// Package sqltemplate models SQL templates (Definition 2.1): SQL statements
// with {p_i} placeholders, their structural features (joins, aggregations,
// tables, predicates, subqueries), the mapping from placeholders to schema
// columns, and instantiation into executable SQL queries (Definition 2.3).
package sqltemplate

import (
	"fmt"
	"regexp"
	"strings"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// Template is one SQL template.
type Template struct {
	ID   int
	Text string
	Stmt *sqlparser.SelectStmt
}

// Parse parses template SQL (placeholders allowed).
func Parse(sql string) (*Template, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Template{Text: stmt.SQL(), Stmt: stmt}, nil
}

// MustParse parses or panics; for tests and literals.
func MustParse(sql string) *Template {
	t, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return t
}

// SQL returns the canonical template text.
func (t *Template) SQL() string { return t.Text }

// Placeholders returns the distinct placeholder names in first-appearance
// order.
func (t *Template) Placeholders() []string {
	var names []string
	seen := map[string]bool{}
	collect := func(s *sqlparser.SelectStmt) {
		s.WalkExprs(func(e sqlparser.Expr) {
			if ph, ok := e.(*sqlparser.Placeholder); ok && !seen[ph.Name] {
				seen[ph.Name] = true
				names = append(names, ph.Name)
			}
		})
	}
	collect(t.Stmt)
	return names
}

// Features summarizes a template's structure for specification checking
// (Definition 2.5).
type Features struct {
	NumTables       int // distinct base tables accessed (subqueries included)
	NumJoins        int // JOIN clauses (subqueries included)
	NumAggregations int // aggregate function calls
	NumPredicates   int // distinct placeholders
	HasGroupBy      bool
	HasNestedQuery  bool
	HasOrderBy      bool
	HasDistinct     bool
	// HasComplexScalar reports arithmetic of depth >= 2 or CASE expressions
	// in the select list — the BI-workload trait of §2.
	HasComplexScalar bool
}

// Features computes the structural features of the template.
func (t *Template) Features() Features {
	var f Features
	tables := map[string]bool{}
	var scan func(s *sqlparser.SelectStmt)
	scan = func(s *sqlparser.SelectStmt) {
		if s.From != nil {
			tables[strings.ToLower(s.From.Table)] = true
		}
		for _, j := range s.Joins {
			tables[strings.ToLower(j.Table.Table)] = true
		}
		f.NumJoins += len(s.Joins)
		if len(s.GroupBy) > 0 {
			f.HasGroupBy = true
		}
		if len(s.OrderBy) > 0 {
			f.HasOrderBy = true
		}
		if s.Distinct {
			f.HasDistinct = true
		}
		for _, sub := range directSubqueries(s) {
			f.HasNestedQuery = true
			scan(sub)
		}
	}
	scan(t.Stmt)
	f.NumTables = len(tables)
	f.NumPredicates = len(t.Placeholders())
	f.HasComplexScalar = hasComplexScalar(t.Stmt)
	f.NumAggregations = countAggs(t.Stmt)
	return f
}

// directSubqueries returns only the statement's immediate child subqueries.
func directSubqueries(s *sqlparser.SelectStmt) []*sqlparser.SelectStmt {
	var subs []*sqlparser.SelectStmt
	var visit func(e sqlparser.Expr)
	visit = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *sqlparser.InExpr:
			visit(t.X)
			for _, it := range t.List {
				visit(it)
			}
			if t.Sub != nil {
				subs = append(subs, t.Sub)
			}
		case *sqlparser.ExistsExpr:
			subs = append(subs, t.Sub)
		case *sqlparser.SubqueryExpr:
			subs = append(subs, t.Sub)
		case *sqlparser.BinaryExpr:
			visit(t.L)
			visit(t.R)
		case *sqlparser.UnaryExpr:
			visit(t.X)
		case *sqlparser.BetweenExpr:
			visit(t.X)
			visit(t.Lo)
			visit(t.Hi)
		case *sqlparser.LikeExpr:
			visit(t.X)
		case *sqlparser.IsNullExpr:
			visit(t.X)
		case *sqlparser.CaseExpr:
			for _, w := range t.Whens {
				visit(w.Cond)
				visit(w.Result)
			}
			visit(t.Else)
		case *sqlparser.FuncCall:
			for _, a := range t.Args {
				visit(a)
			}
		}
	}
	for _, it := range s.Items {
		visit(it.Expr)
	}
	for _, j := range s.Joins {
		visit(j.On)
	}
	visit(s.Where)
	for _, g := range s.GroupBy {
		visit(g)
	}
	visit(s.Having)
	for _, o := range s.OrderBy {
		visit(o.Expr)
	}
	return subs
}

func countAggs(s *sqlparser.SelectStmt) int {
	n := 0
	var visit func(e sqlparser.Expr)
	visit = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *sqlparser.FuncCall:
			if t.IsAggregate() {
				n++
			}
			for _, a := range t.Args {
				visit(a)
			}
		case *sqlparser.BinaryExpr:
			visit(t.L)
			visit(t.R)
		case *sqlparser.UnaryExpr:
			visit(t.X)
		case *sqlparser.BetweenExpr:
			visit(t.X)
			visit(t.Lo)
			visit(t.Hi)
		case *sqlparser.InExpr:
			visit(t.X)
			for _, it := range t.List {
				visit(it)
			}
		case *sqlparser.LikeExpr:
			visit(t.X)
		case *sqlparser.IsNullExpr:
			visit(t.X)
		case *sqlparser.CaseExpr:
			for _, w := range t.Whens {
				visit(w.Cond)
				visit(w.Result)
			}
			visit(t.Else)
		}
	}
	// Only the outer query's aggregations count: a MIN inside a nested
	// filter subquery is plumbing, not a workload characteristic.
	for _, it := range s.Items {
		visit(it.Expr)
	}
	visit(s.Having)
	return n
}

// hasComplexScalar detects CASE expressions or nested arithmetic in the
// select list.
func hasComplexScalar(s *sqlparser.SelectStmt) bool {
	depth := func(e sqlparser.Expr) int {
		var d func(e sqlparser.Expr) int
		d = func(e sqlparser.Expr) int {
			switch t := e.(type) {
			case *sqlparser.BinaryExpr:
				if t.Op.IsComparison() || t.Op == sqlparser.OpAnd || t.Op == sqlparser.OpOr {
					return max(d(t.L), d(t.R))
				}
				return 1 + max(d(t.L), d(t.R))
			case *sqlparser.FuncCall:
				m := 0
				for _, a := range t.Args {
					if v := d(a); v > m {
						m = v
					}
				}
				return m
			case *sqlparser.CaseExpr:
				return 2
			}
			return 0
		}
		return d(e)
	}
	for _, it := range s.Items {
		if it.Expr != nil && depth(it.Expr) >= 2 {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlaceholderBinding associates one placeholder with the column it is
// compared against, which defines its value domain for profiling and BO.
type PlaceholderBinding struct {
	Name   string
	Table  *catalog.Table
	Column *catalog.Column
}

// BindPlaceholders maps each placeholder to the schema column it constrains
// by walking comparison/BETWEEN/IN contexts. Placeholders not adjacent to a
// recognizable column produce an error — such templates cannot be profiled.
func (t *Template) BindPlaceholders(schema *catalog.Schema) ([]PlaceholderBinding, error) {
	bindings := map[string]PlaceholderBinding{}
	var order []string
	var scan func(s *sqlparser.SelectStmt) error
	scan = func(s *sqlparser.SelectStmt) error {
		// Alias map for this level.
		aliases := map[string]string{}
		if s.From != nil {
			aliases[strings.ToLower(s.From.Name())] = s.From.Table
		}
		for _, j := range s.Joins {
			aliases[strings.ToLower(j.Table.Name())] = j.Table.Table
		}
		resolve := func(cr *sqlparser.ColumnRef) (*catalog.Table, *catalog.Column) {
			if cr.Table != "" {
				tblName, ok := aliases[strings.ToLower(cr.Table)]
				if !ok {
					return nil, nil
				}
				tbl := schema.Table(tblName)
				if tbl == nil {
					return nil, nil
				}
				return tbl, tbl.Column(cr.Name)
			}
			for _, tblName := range aliases {
				tbl := schema.Table(tblName)
				if tbl == nil {
					continue
				}
				if col := tbl.Column(cr.Name); col != nil {
					return tbl, col
				}
			}
			return nil, nil
		}
		record := func(ph *sqlparser.Placeholder, colExpr sqlparser.Expr) {
			cr, ok := colExpr.(*sqlparser.ColumnRef)
			if !ok {
				return
			}
			tbl, col := resolve(cr)
			if col == nil {
				return
			}
			if _, dup := bindings[ph.Name]; !dup {
				bindings[ph.Name] = PlaceholderBinding{Name: ph.Name, Table: tbl, Column: col}
				order = append(order, ph.Name)
			}
		}
		var visit func(e sqlparser.Expr)
		visit = func(e sqlparser.Expr) {
			if e == nil {
				return
			}
			switch x := e.(type) {
			case *sqlparser.BinaryExpr:
				if x.Op.IsComparison() {
					if ph, ok := x.R.(*sqlparser.Placeholder); ok {
						record(ph, x.L)
					}
					if ph, ok := x.L.(*sqlparser.Placeholder); ok {
						record(ph, x.R)
					}
				}
				visit(x.L)
				visit(x.R)
			case *sqlparser.BetweenExpr:
				if ph, ok := x.Lo.(*sqlparser.Placeholder); ok {
					record(ph, x.X)
				}
				if ph, ok := x.Hi.(*sqlparser.Placeholder); ok {
					record(ph, x.X)
				}
				visit(x.X)
			case *sqlparser.InExpr:
				for _, it := range x.List {
					if ph, ok := it.(*sqlparser.Placeholder); ok {
						record(ph, x.X)
					}
				}
				visit(x.X)
			case *sqlparser.UnaryExpr:
				visit(x.X)
			case *sqlparser.LikeExpr:
				visit(x.X)
			case *sqlparser.CaseExpr:
				for _, w := range x.Whens {
					visit(w.Cond)
					visit(w.Result)
				}
				visit(x.Else)
			case *sqlparser.FuncCall:
				for _, a := range x.Args {
					visit(a)
				}
			}
		}
		for _, it := range s.Items {
			visit(it.Expr)
		}
		visit(s.Where)
		visit(s.Having)
		for _, sub := range directSubqueries(s) {
			if err := scan(sub); err != nil {
				return err
			}
		}
		return nil
	}
	if err := scan(t.Stmt); err != nil {
		return nil, err
	}
	var out []PlaceholderBinding
	for _, name := range t.Placeholders() {
		b, ok := bindings[name]
		if !ok {
			return nil, fmt.Errorf("sqltemplate: placeholder {%s} is not bound to a column", name)
		}
		out = append(out, b)
		_ = order
	}
	return out, nil
}

var placeholderRe = regexp.MustCompile(`\{([^{}]+)\}`)

// Instantiate substitutes placeholder values into the template text,
// returning executable SQL. Missing values are an error.
func (t *Template) Instantiate(vals map[string]sqltypes.Value) (string, error) {
	var missing []string
	out := placeholderRe.ReplaceAllStringFunc(t.Text, func(m string) string {
		name := strings.TrimSpace(m[1 : len(m)-1])
		v, ok := vals[name]
		if !ok {
			missing = append(missing, name)
			return m
		}
		return v.SQLLiteral()
	})
	if len(missing) > 0 {
		return "", fmt.Errorf("sqltemplate: missing values for placeholders %v", missing)
	}
	return out, nil
}

// Clone returns a deep copy with a fresh parse of the same text.
func (t *Template) Clone() *Template {
	c := MustParse(t.Text)
	c.ID = t.ID
	return c
}
