package sqltemplate

import (
	"strings"
	"testing"
	"testing/quick"

	"sqlbarber/internal/datagen"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

func TestPlaceholdersOrdered(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE a > {p_2} AND b < {p_1} AND a > {p_2}")
	got := tm.Placeholders()
	if len(got) != 2 || got[0] != "p_2" || got[1] != "p_1" {
		t.Fatalf("Placeholders = %v", got)
	}
}

func TestFeaturesCounting(t *testing.T) {
	tm := MustParse(`SELECT u.name, SUM(o.amount), COUNT(*) FROM users AS u
		JOIN orders AS o ON u.id = o.uid
		JOIN items AS i ON o.id = i.oid
		WHERE o.amount > {p_1} AND u.id IN (SELECT uid FROM vip WHERE score > {p_2})
		GROUP BY u.name`)
	f := tm.Features()
	if f.NumJoins != 2 {
		t.Errorf("joins = %d, want 2", f.NumJoins)
	}
	if f.NumTables != 4 { // users, orders, items, vip
		t.Errorf("tables = %d, want 4", f.NumTables)
	}
	if f.NumAggregations != 2 {
		t.Errorf("aggs = %d, want 2", f.NumAggregations)
	}
	if f.NumPredicates != 2 {
		t.Errorf("predicates = %d, want 2", f.NumPredicates)
	}
	if !f.HasGroupBy || !f.HasNestedQuery {
		t.Error("groupby/nested flags wrong")
	}
	if f.HasComplexScalar {
		t.Error("no complex scalar here")
	}
}

func TestFeaturesSubqueryAggregatesNotCounted(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE a > (SELECT MIN(x) FROM s WHERE x < {p_1})")
	f := tm.Features()
	if f.NumAggregations != 0 {
		t.Fatalf("nested MIN counted as workload aggregation: %d", f.NumAggregations)
	}
	if !f.HasNestedQuery {
		t.Fatal("scalar subquery must count as nested")
	}
}

func TestFeaturesComplexScalar(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT a FROM t", false},
		{"SELECT a + 1 FROM t", false},
		{"SELECT a * 2 + b / 3 FROM t", true},
		{"SELECT CASE WHEN a > b THEN 1 ELSE 0 END FROM t", true},
		{"SELECT SUM(a) FROM t", false},
		{"SELECT (a + 1) * (b + 2) FROM t", true},
	}
	for _, c := range cases {
		if got := MustParse(c.sql).Features().HasComplexScalar; got != c.want {
			t.Errorf("HasComplexScalar(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestInstantiate(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE a > {p_1} AND name = {p_2}")
	sql, err := tm.Instantiate(map[string]sqltypes.Value{
		"p_1": sqltypes.NewInt(5),
		"p_2": sqltypes.NewString("bob's"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "a > 5") || !strings.Contains(sql, "'bob''s'") {
		t.Fatalf("instantiated: %s", sql)
	}
}

func TestInstantiateMissingValue(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE a > {p_1}")
	if _, err := tm.Instantiate(nil); err == nil {
		t.Fatal("missing placeholder value must error")
	}
}

func TestBindPlaceholders(t *testing.T) {
	db := datagen.TPCH(1, 0.05)
	tm := MustParse(`SELECT l.l_orderkey FROM lineitem AS l JOIN orders AS o ON l.l_orderkey = o.o_orderkey
		WHERE l.l_quantity > {p_1} AND o.o_totalprice BETWEEN {p_2} AND {p_3} AND l.l_partkey IN ({p_4}, 5)`)
	bindings, err := tm.BindPlaceholders(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 4 {
		t.Fatalf("got %d bindings", len(bindings))
	}
	want := map[string]string{
		"p_1": "l_quantity", "p_2": "o_totalprice", "p_3": "o_totalprice", "p_4": "l_partkey",
	}
	for _, b := range bindings {
		if b.Column.Name != want[b.Name] {
			t.Errorf("%s bound to %s, want %s", b.Name, b.Column.Name, want[b.Name])
		}
	}
}

func TestBindPlaceholdersSubquery(t *testing.T) {
	db := datagen.TPCH(1, 0.05)
	tm := MustParse("SELECT o_orderkey FROM orders WHERE o_custkey IN (SELECT c_custkey FROM customer WHERE c_acctbal >= {p_1})")
	bindings, err := tm.BindPlaceholders(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 1 || bindings[0].Column.Name != "c_acctbal" {
		t.Fatalf("subquery binding: %+v", bindings)
	}
}

func TestBindPlaceholdersUnbound(t *testing.T) {
	db := datagen.TPCH(1, 0.05)
	tm := MustParse("SELECT o_orderkey FROM orders WHERE {p_1} > {p_2}")
	if _, err := tm.BindPlaceholders(db.Schema); err == nil {
		t.Fatal("placeholder-vs-placeholder comparison cannot bind")
	}
}

func TestBindPlaceholdersUnqualified(t *testing.T) {
	db := datagen.TPCH(1, 0.05)
	tm := MustParse("SELECT o_orderkey FROM orders WHERE o_totalprice > {p_1}")
	bindings, err := tm.BindPlaceholders(db.Schema)
	if err != nil || len(bindings) != 1 {
		t.Fatalf("unqualified binding failed: %v %v", bindings, err)
	}
	if bindings[0].Table.Name != "orders" {
		t.Fatalf("bound to table %s", bindings[0].Table.Name)
	}
}

func TestClone(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE a > {p_1}")
	tm.ID = 7
	c := tm.Clone()
	if c.ID != 7 || c.SQL() != tm.SQL() {
		t.Fatal("clone mismatch")
	}
	if c.Stmt == tm.Stmt {
		t.Fatal("clone must re-parse, not share the AST")
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("SELECT FROM"); err == nil {
		t.Fatal("invalid template must error")
	}
}

func TestFeaturesDistinctAndOrderBy(t *testing.T) {
	f := MustParse("SELECT DISTINCT a FROM t ORDER BY a").Features()
	if !f.HasDistinct || !f.HasOrderBy {
		t.Fatal("distinct/orderby flags")
	}
}

// TestInstantiateParsesProperty: for arbitrary numeric values, instantiating
// a multi-placeholder template yields parseable SQL with no placeholders
// left.
func TestInstantiateParsesProperty(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE a > {p_1} AND b BETWEEN {p_2} AND {p_3} AND c IN ({p_4}, 7)")
	f := func(a int32, b float64, c int16, d int8) bool {
		if b != b { // NaN renders unparsable; skip
			return true
		}
		sql, err := tm.Instantiate(map[string]sqltypes.Value{
			"p_1": sqltypes.NewInt(int64(a)),
			"p_2": sqltypes.NewFloat(b),
			"p_3": sqltypes.NewInt(int64(c)),
			"p_4": sqltypes.NewInt(int64(d)),
		})
		if err != nil {
			return false
		}
		if strings.Contains(sql, "{") {
			return false
		}
		stmt, err := sqlparser.Parse(sql)
		return err == nil && stmt != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInstantiateStringEscapingProperty: arbitrary strings (including quote
// characters) survive instantiation into parseable SQL.
func TestInstantiateStringEscapingProperty(t *testing.T) {
	tm := MustParse("SELECT a FROM t WHERE name = {p_1}")
	f := func(raw string) bool {
		s := sanitizeStr(raw)
		sql, err := tm.Instantiate(map[string]sqltypes.Value{"p_1": sqltypes.NewString(s)})
		if err != nil {
			return false
		}
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return false
		}
		lit, ok := stmt.Where.(*sqlparser.BinaryExpr).R.(*sqlparser.Literal)
		return ok && lit.Value.Str() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitizeStr keeps instantiation-safe characters: the template engine works
// at text level, so strings containing placeholder braces are out of scope.
func sanitizeStr(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '{' || r == '}' || r == '\n' || r == '\r' {
			continue
		}
		out = append(out, r)
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return string(out)
}
