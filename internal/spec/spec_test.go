package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"sqlbarber/internal/sqltemplate"
)

func TestFromNaturalLanguage(t *testing.T) {
	s := FromNaturalLanguage("I want a complex SQL template that accesses 3 tables, includes 5 joins, and performs 3 aggregations.")
	if s.NumTables == nil || *s.NumTables != 3 {
		t.Errorf("tables: %+v", s.NumTables)
	}
	if s.NumJoins == nil || *s.NumJoins != 5 {
		t.Errorf("joins: %+v", s.NumJoins)
	}
	if s.NumAggregations == nil || *s.NumAggregations != 3 {
		t.Errorf("aggs: %+v", s.NumAggregations)
	}
}

func TestFromNaturalLanguageBI(t *testing.T) {
	s := FromNaturalLanguage("I want an SQL template with no joins but with complex scalar expressions")
	if s.NumJoins == nil || *s.NumJoins != 0 {
		t.Error("'no joins' must set joins=0")
	}
	if s.ComplexScalar == nil || !*s.ComplexScalar {
		t.Error("complex scalar flag")
	}
}

func TestFromNaturalLanguageInstructions(t *testing.T) {
	cases := []struct {
		text  string
		check func(Spec) bool
	}{
		{"The SQL template should include a nested subquery.", func(s Spec) bool { return s.NestedQuery != nil && *s.NestedQuery }},
		{"The SQL template should have exactly 3 predicate values.", func(s Spec) bool { return s.NumPredicates != nil && *s.NumPredicates == 3 }},
		{"The SQL template should use the GROUP BY operator.", func(s Spec) bool { return s.GroupBy != nil && *s.GroupBy }},
		{"use group by please", func(s Spec) bool { return s.GroupBy != nil && *s.GroupBy }},
		{"without joins", func(s Spec) bool { return s.NumJoins != nil && *s.NumJoins == 0 }},
	}
	for _, c := range cases {
		if !c.check(FromNaturalLanguage(c.text)) {
			t.Errorf("instruction %q not parsed", c.text)
		}
	}
}

func TestParseJSON(t *testing.T) {
	data := []byte(`[
		{"template_id": 1, "num_joins": 3, "num_aggregations": 2},
		{"template_id": 2, "num_tables_accessed": 2, "instruction": "Have a nested subquery"}
	]`)
	specs, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if *specs[0].NumJoins != 3 || *specs[0].NumAggregations != 2 {
		t.Error("spec 1 fields")
	}
	if specs[1].NestedQuery == nil || !*specs[1].NestedQuery {
		t.Error("embedded instruction not merged")
	}
	if _, err := ParseJSON([]byte("{")); err == nil {
		t.Error("invalid JSON must error")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := Spec{TemplateID: 4, NumJoins: Int(2), GroupBy: Bool(true)}
	data, err := json.Marshal([]Spec{s})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back[0].NumJoins != 2 || !*back[0].GroupBy || back[0].TemplateID != 4 {
		t.Fatalf("round trip: %+v", back[0])
	}
}

func TestCheckViolations(t *testing.T) {
	tm := sqltemplate.MustParse("SELECT a, COUNT(*) FROM t JOIN s ON t.id = s.tid WHERE a > {p_1} GROUP BY a")
	f := tm.Features()
	s := Spec{NumJoins: Int(1), NumAggregations: Int(1), NumPredicates: Int(1), GroupBy: Bool(true)}
	ok, v := s.Check(f)
	if !ok || len(v) != 0 {
		t.Fatalf("should pass: %v", v)
	}
	s2 := Spec{NumJoins: Int(2), NestedQuery: Bool(true), GroupBy: Bool(false)}
	ok, v = s2.Check(f)
	if ok {
		t.Fatal("should fail")
	}
	joined := strings.Join(v, "; ")
	for _, want := range []string{"2 joins", "nested subquery", "must not include a GROUP BY"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations %q missing %q", joined, want)
		}
	}
}

func TestMergePrecedence(t *testing.T) {
	a := Spec{NumJoins: Int(1), Instructions: []string{"base"}}
	b := Spec{NumJoins: Int(3), GroupBy: Bool(true), Instructions: []string{"override"}}
	a.Merge(b)
	if *a.NumJoins != 3 || !*a.GroupBy {
		t.Fatal("merge must let other win")
	}
	if len(a.Instructions) != 2 {
		t.Fatal("instructions must accumulate")
	}
}

func TestDescribe(t *testing.T) {
	s := Spec{NumJoins: Int(2), NumTables: Int(3), NestedQuery: Bool(true), ComplexScalar: Bool(true)}
	d := s.Describe()
	for _, want := range []string{"exactly 2 joins", "exactly 3 tables", "nested subquery", "complex scalar"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() %q missing %q", d, want)
		}
	}
	if got := (Spec{}).Describe(); !strings.Contains(got, "no structural constraints") {
		t.Errorf("empty describe: %q", got)
	}
}
