// Package spec models SQL template specifications (Definition 2.5): the
// numerical and structural constraints a generated template must satisfy.
// Specifications arrive as structured JSON (the Redset-style annotations of
// §6.1), as natural-language instructions, or as a mix of both; this package
// parses each form into one canonical Spec and checks templates against it.
package spec

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"sqlbarber/internal/sqltemplate"
)

// Spec is one template specification. Nil pointer fields are unconstrained.
type Spec struct {
	TemplateID      int
	NumTables       *int
	NumJoins        *int
	NumAggregations *int
	NumPredicates   *int
	NestedQuery     *bool
	GroupBy         *bool
	ComplexScalar   *bool
	// Instructions preserves the raw natural-language fragments that
	// produced this spec, for prompt construction.
	Instructions []string
}

// Int returns an *int for literal construction.
func Int(v int) *int { return &v }

// Bool returns a *bool for literal construction.
func Bool(v bool) *bool { return &v }

// jsonSpec mirrors the Redset-style JSON annotation format.
type jsonSpec struct {
	TemplateID      int    `json:"template_id"`
	NumTables       *int   `json:"num_tables_accessed,omitempty"`
	NumJoins        *int   `json:"num_joins,omitempty"`
	NumAggregations *int   `json:"num_aggregations,omitempty"`
	NumPredicates   *int   `json:"num_predicates,omitempty"`
	NestedQuery     *bool  `json:"nested_subquery,omitempty"`
	GroupBy         *bool  `json:"group_by,omitempty"`
	ComplexScalar   *bool  `json:"complex_scalar,omitempty"`
	Instruction     string `json:"instruction,omitempty"`
}

// ParseJSON decodes a JSON array of specifications.
func ParseJSON(data []byte) ([]Spec, error) {
	var raw []jsonSpec
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	out := make([]Spec, len(raw))
	for i, r := range raw {
		s := Spec{
			TemplateID:      r.TemplateID,
			NumTables:       r.NumTables,
			NumJoins:        r.NumJoins,
			NumAggregations: r.NumAggregations,
			NumPredicates:   r.NumPredicates,
			NestedQuery:     r.NestedQuery,
			GroupBy:         r.GroupBy,
			ComplexScalar:   r.ComplexScalar,
		}
		if r.Instruction != "" {
			s.Merge(FromNaturalLanguage(r.Instruction))
		}
		out[i] = s
	}
	return out, nil
}

// MarshalJSON renders the spec in the annotation format.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSpec{
		TemplateID:      s.TemplateID,
		NumTables:       s.NumTables,
		NumJoins:        s.NumJoins,
		NumAggregations: s.NumAggregations,
		NumPredicates:   s.NumPredicates,
		NestedQuery:     s.NestedQuery,
		GroupBy:         s.GroupBy,
		ComplexScalar:   s.ComplexScalar,
		Instruction:     strings.Join(s.Instructions, " "),
	})
}

var (
	reJoins      = regexp.MustCompile(`(\d+)\s+joins?\b`)
	reAggs       = regexp.MustCompile(`(\d+)\s+aggregations?\b`)
	rePreds      = regexp.MustCompile(`(\d+)\s+predicate`)
	reTables     = regexp.MustCompile(`(?:access(?:es)?\s+)?(\d+)\s+tables?\b`)
	reNoJoins    = regexp.MustCompile(`\bno\s+joins?\b|\bwithout\s+joins?\b`)
	reNested     = regexp.MustCompile(`nested\s+(?:sub)?quer`)
	reGroupBy    = regexp.MustCompile(`group\s*by`)
	reComplexSca = regexp.MustCompile(`complex\s+scalar`)
)

// FromNaturalLanguage extracts constraints from a free-form instruction,
// recognizing the constraint vocabulary of §6.1 (joins, aggregations,
// predicates, tables, nested subqueries, GROUP BY, complex scalar
// expressions).
func FromNaturalLanguage(text string) Spec {
	s := Spec{Instructions: []string{text}}
	lower := strings.ToLower(text)
	if m := reJoins.FindStringSubmatch(lower); m != nil {
		n, _ := strconv.Atoi(m[1])
		s.NumJoins = &n
	}
	if reNoJoins.MatchString(lower) {
		zero := 0
		s.NumJoins = &zero
	}
	if m := reAggs.FindStringSubmatch(lower); m != nil {
		n, _ := strconv.Atoi(m[1])
		s.NumAggregations = &n
	}
	if m := rePreds.FindStringSubmatch(lower); m != nil {
		n, _ := strconv.Atoi(m[1])
		s.NumPredicates = &n
	}
	if m := reTables.FindStringSubmatch(lower); m != nil {
		n, _ := strconv.Atoi(m[1])
		s.NumTables = &n
	}
	if reNested.MatchString(lower) {
		t := true
		s.NestedQuery = &t
	}
	if reGroupBy.MatchString(lower) {
		t := true
		s.GroupBy = &t
	}
	if reComplexSca.MatchString(lower) {
		t := true
		s.ComplexScalar = &t
	}
	return s
}

// Merge overlays constraints from other onto s (other wins where set).
func (s *Spec) Merge(other Spec) {
	if other.NumTables != nil {
		s.NumTables = other.NumTables
	}
	if other.NumJoins != nil {
		s.NumJoins = other.NumJoins
	}
	if other.NumAggregations != nil {
		s.NumAggregations = other.NumAggregations
	}
	if other.NumPredicates != nil {
		s.NumPredicates = other.NumPredicates
	}
	if other.NestedQuery != nil {
		s.NestedQuery = other.NestedQuery
	}
	if other.GroupBy != nil {
		s.GroupBy = other.GroupBy
	}
	if other.ComplexScalar != nil {
		s.ComplexScalar = other.ComplexScalar
	}
	s.Instructions = append(s.Instructions, other.Instructions...)
}

// Violation is one structured constraint breach: which spec dimension
// failed, what the spec wanted, and what the template has. Downstream
// consumers (the static analyzer, AttemptTrace) map Field to stable
// diagnostic codes instead of re-parsing the message.
type Violation struct {
	// Field names the constrained dimension: "tables", "joins",
	// "aggregations", "predicates", "nested_query", "group_by",
	// "complex_scalar".
	Field string
	// Want and Got carry the numeric expectation for integer constraints;
	// boolean constraints use 1/0.
	Want, Got int
	// Msg is the human/LLM-facing description (same wording Check used).
	Msg string
}

// Violations verifies features against the spec, returning one structured
// violation per breached constraint.
func (s Spec) Violations(f sqltemplate.Features) []Violation {
	var v []Violation
	chkInt := func(field, name string, want *int, got int) {
		if want != nil && got != *want {
			v = append(v, Violation{
				Field: field, Want: *want, Got: got,
				Msg: fmt.Sprintf("expected %d %s, template has %d", *want, name, got),
			})
		}
	}
	chkBool := func(field, name string, want *bool, got bool) {
		if want == nil {
			return
		}
		if *want && !got {
			v = append(v, Violation{Field: field, Want: 1, Got: 0,
				Msg: fmt.Sprintf("template must include %s", name)})
		}
		if !*want && got {
			v = append(v, Violation{Field: field, Want: 0, Got: 1,
				Msg: fmt.Sprintf("template must not include %s", name)})
		}
	}
	chkInt("tables", "tables accessed", s.NumTables, f.NumTables)
	chkInt("joins", "joins", s.NumJoins, f.NumJoins)
	chkInt("aggregations", "aggregations", s.NumAggregations, f.NumAggregations)
	chkInt("predicates", "predicate placeholders", s.NumPredicates, f.NumPredicates)
	chkBool("nested_query", "a nested subquery", s.NestedQuery, f.HasNestedQuery)
	chkBool("group_by", "a GROUP BY clause", s.GroupBy, f.HasGroupBy)
	chkBool("complex_scalar", "complex scalar expressions", s.ComplexScalar, f.HasComplexScalar)
	return v
}

// Check verifies features against the spec, returning whether it passes and
// the list of violations (for the LLM's FixSemantics feedback).
func (s Spec) Check(f sqltemplate.Features) (bool, []string) {
	vs := s.Violations(f)
	if len(vs) == 0 {
		return true, nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.Msg
	}
	return false, msgs
}

// Describe renders the spec as the natural-language requirement block used
// in LLM prompts.
func (s Spec) Describe() string {
	var parts []string
	add := func(cond bool, f string, args ...any) {
		if cond {
			parts = append(parts, fmt.Sprintf(f, args...))
		}
	}
	add(s.NumTables != nil, "access exactly %d tables", deref(s.NumTables))
	add(s.NumJoins != nil, "contain exactly %d joins", deref(s.NumJoins))
	add(s.NumAggregations != nil, "perform exactly %d aggregations", deref(s.NumAggregations))
	add(s.NumPredicates != nil, "expose exactly %d predicate placeholders", deref(s.NumPredicates))
	if s.NestedQuery != nil {
		if *s.NestedQuery {
			parts = append(parts, "include a nested subquery")
		} else {
			parts = append(parts, "avoid nested subqueries")
		}
	}
	if s.GroupBy != nil {
		if *s.GroupBy {
			parts = append(parts, "use a GROUP BY clause")
		} else {
			parts = append(parts, "avoid GROUP BY")
		}
	}
	if s.ComplexScalar != nil && *s.ComplexScalar {
		parts = append(parts, "project complex scalar expressions")
	}
	if len(parts) == 0 {
		return "The SQL template has no structural constraints."
	}
	return "The SQL template must " + strings.Join(parts, ", ") + "."
}

func deref(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}
