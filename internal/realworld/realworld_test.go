package realworld

import (
	"testing"
)

func TestSnowsetCardinalityShapes(t *testing.T) {
	d1 := SnowsetCardinality(1, 0, 10000, 10, 1000)
	if d1.Total() != 1000 {
		t.Fatalf("total %d", d1.Total())
	}
	// Variant 1 is head-heavy: the first interval dominates the last.
	if d1.Counts[0] <= d1.Counts[9] {
		t.Fatalf("variant 1 not head-heavy: %v", d1.Counts)
	}
	d2 := SnowsetCardinality(2, 0, 10000, 10, 1000)
	if d2.Total() != 1000 {
		t.Fatalf("total %d", d2.Total())
	}
	// Variant 2 has a mid-range bump: some interval beyond the third
	// exceeds its neighbors.
	bump := false
	for j := 3; j < 9; j++ {
		if d2.Counts[j] > d2.Counts[j-1] {
			bump = true
		}
	}
	if !bump {
		t.Fatalf("variant 2 lacks a secondary mode: %v", d2.Counts)
	}
}

func TestCostDistributionsSkew(t *testing.T) {
	for name, d := range map[string][]int{
		"snowset": SnowsetCost(0, 10000, 10, 1000).Counts,
		"redset":  RedsetCost(0, 10000, 10, 1000).Counts,
	} {
		head := d[0] + d[1]
		tail := d[8] + d[9]
		if head <= tail {
			t.Errorf("%s cost distribution not cheap-dominated: %v", name, d)
		}
		if tail == 0 {
			t.Errorf("%s cost distribution has no expensive tail: %v", name, d)
		}
	}
}

func TestDistributionsRespectIntervalCount(t *testing.T) {
	for _, n := range []int{5, 10, 20, 25} {
		d := RedsetCost(0, 10000, n, 500)
		if len(d.Counts) != n || d.Total() != 500 {
			t.Fatalf("intervals=%d: counts=%d total=%d", n, len(d.Counts), d.Total())
		}
	}
}

func TestRedsetSpecs(t *testing.T) {
	specs := RedsetSpecs(1)
	if len(specs) != 24 {
		t.Fatalf("got %d specs, want 24", len(specs))
	}
	joinHist := map[int]int{}
	for i, s := range specs {
		if s.TemplateID != i+1 {
			t.Errorf("spec %d id %d", i, s.TemplateID)
		}
		if s.NumJoins == nil || s.NumTables == nil || s.NumAggregations == nil {
			t.Fatalf("spec %d missing annotations", i)
		}
		if *s.NumTables != *s.NumJoins+1 {
			t.Errorf("spec %d tables %d != joins+1 %d", i, *s.NumTables, *s.NumJoins+1)
		}
		if len(s.Instructions) == 0 {
			t.Errorf("spec %d has no natural-language instruction", i)
		}
		if s.NumPredicates == nil || *s.NumPredicates < 1 {
			t.Errorf("spec %d must request at least one predicate", i)
		}
		joinHist[*s.NumJoins]++
	}
	// Redset shape: narrow queries dominate.
	if joinHist[0] < joinHist[2] || joinHist[1] < joinHist[3] {
		t.Errorf("join profile not Redset-shaped: %v", joinHist)
	}
	// At least one of each instruction type across the workload.
	var nested, grouped int
	for _, s := range specs {
		if s.NestedQuery != nil && *s.NestedQuery {
			nested++
		}
		if s.GroupBy != nil && *s.GroupBy {
			grouped++
		}
	}
	if nested == 0 || grouped == 0 {
		t.Errorf("instruction mix: nested=%d grouped=%d", nested, grouped)
	}
}

func TestRedsetSpecsDeterministic(t *testing.T) {
	a := RedsetSpecs(5)
	b := RedsetSpecs(5)
	for i := range a {
		da, _ := a[i].MarshalJSON()
		db, _ := b[i].MarshalJSON()
		if string(da) != string(db) {
			t.Fatalf("spec %d differs for same seed", i)
		}
	}
}

func TestGroupByImpliesAggregation(t *testing.T) {
	for _, s := range RedsetSpecs(9) {
		if s.GroupBy != nil && *s.GroupBy && *s.NumAggregations == 0 {
			t.Fatalf("GROUP BY spec with zero aggregations: %+v", s)
		}
	}
}
