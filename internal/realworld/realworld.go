// Package realworld derives SQL-template specifications and query-cost
// distributions shaped like the production statistics published by Amazon
// Redshift (Redset, [24]) and Snowflake (Snowset, [27]).
//
// Substitution note (see DESIGN.md): the actual Redset/Snowset dumps are not
// redistributable or reachable offline, so this package models the published
// *shapes* parametrically — heavy-tailed log-normal cardinalities, cheap-
// dominated execution costs with long tails, and per-template join/
// aggregation profiles concentrated on narrow queries — which is exactly
// what SQLBarber consumes from the real statistics.
package realworld

import (
	"math"
	"math/rand"

	"sqlbarber/internal/spec"
	"sqlbarber/internal/stats"
)

// lognormWeights evaluates a log-normal density at interval centers,
// producing the heavy-tailed histograms the Redset/Snowset papers plot.
func lognormWeights(ivs stats.Intervals, mu, sigma float64) []float64 {
	w := make([]float64, len(ivs))
	for i, iv := range ivs {
		x := iv.Center()
		if x <= 0 {
			x = iv.Width() / 2
		}
		lx := math.Log(x)
		z := (lx - mu) / sigma
		w[i] = math.Exp(-z*z/2) / x
	}
	return w
}

// mixWeights blends two weight vectors.
func mixWeights(a, b []float64, wa float64) []float64 {
	// Normalize each component first so the blend ratio is meaningful.
	na, nb := 0.0, 0.0
	for i := range a {
		na += a[i]
		nb += b[i]
	}
	out := make([]float64, len(a))
	for i := range a {
		va, vb := a[i], b[i]
		if na > 0 {
			va /= na
		}
		if nb > 0 {
			vb /= nb
		}
		out[i] = wa*va + (1-wa)*vb
	}
	return out
}

// SnowsetCardinality returns the Snowflake-derived cardinality distribution.
// Variant 1 is dominated by small results with a long tail; variant 2 has a
// secondary mid-range mode (scan-heavy reporting queries).
func SnowsetCardinality(variant int, lo, hi float64, intervals, total int) *stats.TargetDistribution {
	ivs := stats.SplitRange(lo, hi, intervals)
	span := hi - lo
	switch variant {
	case 2:
		w := mixWeights(
			lognormWeights(ivs, math.Log(span*0.06), 1.0),
			lognormWeights(ivs, math.Log(span*0.55), 0.35),
			0.6,
		)
		return stats.FromWeights(ivs, w, total)
	default:
		w := lognormWeights(ivs, math.Log(span*0.08), 1.2)
		return stats.FromWeights(ivs, w, total)
	}
}

// SnowsetCost returns the Snowflake-derived execution-cost distribution:
// most queries cheap, with a pronounced tail of expensive ones.
func SnowsetCost(lo, hi float64, intervals, total int) *stats.TargetDistribution {
	ivs := stats.SplitRange(lo, hi, intervals)
	span := hi - lo
	w := mixWeights(
		lognormWeights(ivs, math.Log(span*0.10), 0.9),
		lognormWeights(ivs, math.Log(span*0.75), 0.45),
		0.75,
	)
	return stats.FromWeights(ivs, w, total)
}

// RedsetCost returns the Redshift-derived execution-cost distribution. The
// Redset analysis reports an even sharper skew toward short queries than
// Snowset, with a thin but important expensive tail.
func RedsetCost(lo, hi float64, intervals, total int) *stats.TargetDistribution {
	ivs := stats.SplitRange(lo, hi, intervals)
	span := hi - lo
	w := mixWeights(
		lognormWeights(ivs, math.Log(span*0.05), 0.8),
		lognormWeights(ivs, math.Log(span*0.6), 0.6),
		0.85,
	)
	return stats.FromWeights(ivs, w, total)
}

// The three natural-language instructions of §6.1.
var instructions = []string{
	"The SQL template should include a nested subquery.",
	"The SQL template should have exactly %d predicate values.",
	"The SQL template should use the GROUP BY operator.",
}

// RedsetSpecs synthesizes the §6.1 specification workload: 24 SQL templates
// annotated with num_tables_accessed, num_joins, and num_aggregations, whose
// join/aggregation profile follows the Redset finding that production
// workloads are dominated by narrow queries (0-2 joins) with a thin tail of
// wide ones. Each template is additionally assigned at least one of the
// three natural-language instructions.
func RedsetSpecs(seed int64) []spec.Spec {
	rng := rand.New(rand.NewSource(seed))
	// Join-count profile over 24 templates (Redset-shaped).
	joinCounts := []int{
		0, 0, 0, 0, 0, 0, 0, 0, // 8 single-table
		1, 1, 1, 1, 1, 1, 1, // 7 two-table
		2, 2, 2, 2, 2, // 5 three-table
		3, 3, 3, // 3 four-table
		4, // 1 five-table
	}
	specs := make([]spec.Spec, 0, len(joinCounts))
	for i, joins := range joinCounts {
		s := spec.Spec{
			TemplateID:      i + 1,
			NumJoins:        spec.Int(joins),
			NumTables:       spec.Int(joins + 1),
			NumAggregations: spec.Int(rng.Intn(3)),
		}
		// Assign 1-2 of the three instructions.
		perm := rng.Perm(3)
		n := 1 + rng.Intn(2)
		nPreds := 1 + rng.Intn(3)
		for _, k := range perm[:n] {
			switch k {
			case 0:
				s.Merge(spec.FromNaturalLanguage(instructions[0]))
			case 1:
				s.Merge(spec.FromNaturalLanguage(sprintfPreds(nPreds)))
			case 2:
				s.Merge(spec.FromNaturalLanguage(instructions[2]))
				if *s.NumAggregations == 0 {
					s.NumAggregations = spec.Int(1)
				}
			}
		}
		if s.NumPredicates == nil {
			s.NumPredicates = spec.Int(nPreds)
		}
		specs = append(specs, s)
	}
	return specs
}

func sprintfPreds(n int) string {
	return "The SQL template should have exactly " +
		string(rune('0'+n)) + " predicate values."
}
