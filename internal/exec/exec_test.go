package exec

import (
	"testing"
	"testing/quick"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
	"sqlbarber/internal/storage"
)

// smallDB builds a hand-crafted two-table database with fully known contents
// so results can be checked exactly.
func smallDB(t testing.TB) *storage.Database {
	t.Helper()
	schema := &catalog.Schema{
		Name: "shop",
		Tables: []*catalog.Table{
			{
				Name: "users", PrimaryKey: "id",
				Columns: []catalog.Column{
					{Name: "id", Type: catalog.TypeInt},
					{Name: "name", Type: catalog.TypeString},
					{Name: "age", Type: catalog.TypeInt},
				},
			},
			{
				Name: "orders", PrimaryKey: "oid",
				ForeignKeys: []catalog.ForeignKey{{Column: "uid", RefTable: "users", RefColumn: "id"}},
				Columns: []catalog.Column{
					{Name: "oid", Type: catalog.TypeInt},
					{Name: "uid", Type: catalog.TypeInt},
					{Name: "amount", Type: catalog.TypeFloat},
				},
			},
		},
	}
	db := storage.NewDatabase(schema)
	users := db.Table("users")
	for i, u := range []struct {
		name string
		age  int64
	}{{"ann", 30}, {"bob", 25}, {"cat", 35}, {"dan", 40}} {
		users.Append(storage.Row{sqltypes.NewInt(int64(i + 1)), sqltypes.NewString(u.name), sqltypes.NewInt(u.age)})
	}
	orders := db.Table("orders")
	type o struct {
		oid, uid int64
		amt      float64
	}
	for _, r := range []o{
		{1, 1, 100}, {2, 1, 250}, {3, 2, 50}, {4, 3, 75}, {5, 3, 125}, {6, 3, 300},
	} {
		orders.Append(storage.Row{sqltypes.NewInt(r.oid), sqltypes.NewInt(r.uid), sqltypes.NewFloat(r.amt)})
	}
	db.Analyze()
	return db
}

func runSQL(t *testing.T, db *storage.Database, sql string) *Result {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	q, err := plan.Build(db.Schema, stmt)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, err := Run(db, q)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestFilterExact(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT name FROM users WHERE age > 28")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (ann, cat, dan)", len(res.Rows))
	}
}

func TestProjectionAndAlias(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT age * 2 AS dbl FROM users WHERE id = 2")
	if res.Columns[0] != "dbl" {
		t.Fatalf("column name %q", res.Columns[0])
	}
	if res.Rows[0][0].Int() != 50 {
		t.Fatalf("25*2 = %v", res.Rows[0][0])
	}
}

func TestInnerJoinExact(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT u.name, o.amount FROM users AS u JOIN orders AS o ON u.id = o.uid WHERE o.amount >= 100 ORDER BY o.amount")
	// amounts >= 100: 100(ann), 125(cat), 250(ann), 300(cat)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][1].Float() != 100 || res.Rows[3][1].Float() != 300 {
		t.Fatalf("order by broken: %v", res.Rows)
	}
}

func TestLeftJoinNullExtension(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT u.name, o.oid FROM users AS u LEFT JOIN orders AS o ON u.id = o.uid WHERE u.id = 4")
	// dan has no orders.
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if !res.Rows[0][1].IsNull() {
		t.Fatalf("dan's order id should be NULL, got %v", res.Rows[0][1])
	}
}

func TestAggregatesExact(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM orders")
	r := res.Rows[0]
	if r[0].Int() != 6 {
		t.Fatalf("count = %v", r[0])
	}
	if r[1].Float() != 900 {
		t.Fatalf("sum = %v", r[1])
	}
	if r[2].Float() != 150 {
		t.Fatalf("avg = %v", r[2])
	}
	if r[3].Float() != 50 || r[4].Float() != 300 {
		t.Fatalf("min/max = %v/%v", r[3], r[4])
	}
}

func TestGroupByHavingExact(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT uid, COUNT(*) AS n, SUM(amount) AS total FROM orders GROUP BY uid HAVING COUNT(*) >= 2 ORDER BY total DESC")
	// uid 1: 2 orders / 350; uid 3: 3 orders / 500; uid 2 filtered by HAVING.
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 3 || res.Rows[0][2].Float() != 500 {
		t.Fatalf("first group: %v", res.Rows[0])
	}
	if res.Rows[1][0].Int() != 1 || res.Rows[1][2].Float() != 350 {
		t.Fatalf("second group: %v", res.Rows[1])
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT COUNT(*), SUM(amount) FROM orders WHERE amount > 100000")
	if len(res.Rows) != 1 {
		t.Fatal("global aggregate must produce one row even over zero input")
	}
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("COUNT/SUM over empty = %v / %v, want 0 / NULL", res.Rows[0][0], res.Rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT COUNT(DISTINCT uid) FROM orders")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("distinct uids = %v, want 3", res.Rows[0][0])
	}
}

func TestDistinctRows(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT DISTINCT uid FROM orders")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct rows = %d, want 3", len(res.Rows))
	}
}

func TestLimitAndOrder(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT oid FROM orders ORDER BY amount DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 6 || res.Rows[1][0].Int() != 2 {
		t.Fatalf("top-2 by amount: %v", res.Rows)
	}
}

func TestInSubqueryUncorrelated(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT name FROM users WHERE id IN (SELECT uid FROM orders WHERE amount > 200)")
	// amounts > 200: 250 (uid 1), 300 (uid 3) -> ann, cat
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT u.name, (SELECT SUM(o.amount) FROM orders AS o WHERE o.uid = u.id) AS total FROM users AS u ORDER BY u.id")
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	wantTotals := []any{350.0, 50.0, 500.0, nil}
	for i, want := range wantTotals {
		got := res.Rows[i][1]
		if want == nil {
			if !got.IsNull() {
				t.Fatalf("row %d total = %v, want NULL", i, got)
			}
			continue
		}
		if got.Float() != want.(float64) {
			t.Fatalf("row %d total = %v, want %v", i, got, want)
		}
	}
}

func TestNotExistsCorrelated(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT name FROM users AS u WHERE NOT EXISTS (SELECT 1 FROM orders AS o WHERE o.uid = u.id)")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "dan" {
		t.Fatalf("orderless users = %v, want [dan]", res.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT name, CASE WHEN age >= 35 THEN 'old' WHEN age >= 28 THEN 'mid' ELSE 'young' END FROM users ORDER BY id")
	want := []string{"mid", "young", "old", "old"}
	for i, w := range want {
		if res.Rows[i][1].Str() != w {
			t.Fatalf("case row %d = %v, want %s", i, res.Rows[i][1], w)
		}
	}
}

func TestBetweenInListLike(t *testing.T) {
	db := smallDB(t)
	if n := len(runSQL(t, db, "SELECT oid FROM orders WHERE amount BETWEEN 75 AND 125").Rows); n != 3 {
		t.Fatalf("BETWEEN rows = %d, want 3", n)
	}
	if n := len(runSQL(t, db, "SELECT name FROM users WHERE name IN ('ann', 'dan', 'zed')").Rows); n != 2 {
		t.Fatalf("IN rows = %d, want 2", n)
	}
	if n := len(runSQL(t, db, "SELECT name FROM users WHERE name LIKE '%a%'").Rows); n != 3 {
		t.Fatalf("LIKE rows = %d, want 3 (ann, cat, dan)", n)
	}
	if n := len(runSQL(t, db, "SELECT name FROM users WHERE name LIKE '_a_'").Rows); n != 2 {
		t.Fatalf("LIKE underscore rows = %d, want 2 (cat, dan)", n)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := smallDB(t)
	// NULL-producing comparisons must not satisfy WHERE.
	res := runSQL(t, db, "SELECT u.name FROM users AS u LEFT JOIN orders AS o ON u.id = o.uid AND o.amount > 1000 WHERE o.amount > 0")
	if len(res.Rows) != 0 {
		t.Fatalf("NULL > 0 must not pass WHERE; got %d rows", len(res.Rows))
	}
}

func TestScalarFunctions(t *testing.T) {
	db := smallDB(t)
	res := runSQL(t, db, "SELECT ABS(0 - age), LENGTH(name), UPPER(name), COALESCE(NULL, name) FROM users WHERE id = 1")
	r := res.Rows[0]
	if r[0].Int() != 30 || r[1].Int() != 3 || r[2].Str() != "ANN" || r[3].Str() != "ann" {
		t.Fatalf("scalar functions: %v", r)
	}
}

func TestUnknownFunctionError(t *testing.T) {
	db := smallDB(t)
	stmt, _ := sqlparser.Parse("SELECT NOSUCHFN(age) FROM users")
	q, err := plan.Build(db.Schema, stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if _, err := Run(db, q); err == nil {
		t.Fatal("unknown function must error at execution")
	}
}

func TestLikeMatcherProperty(t *testing.T) {
	// `s LIKE s` for plain strings without wildcards is always true, and
	// '%'+s+'%' always matches s.
	f := func(raw string) bool {
		s := sanitize(raw)
		return likeMatch(s, s) && likeMatch(s, "%"+s) && likeMatch(s, s+"%") && likeMatch("x"+s+"y", "_"+s+"_")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 12; i++ {
		c := s[i]
		if c == '%' || c == '_' {
			continue
		}
		out = append(out, c)
	}
	return string(out)
}
