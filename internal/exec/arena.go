package exec

import "sqlbarber/internal/storage"

// Arena is per-probe executor scratch: tuple windows (the []storage.Row
// slices that hold one row per table instance) come from reusable chunks, and
// join hash tables come from a free list. A session that executes many probes
// resets the arena between them instead of handing each probe's intermediate
// state to the garbage collector. Output rows are never arena-backed — a
// Result must stay valid after Reset.
//
// An Arena is single-goroutine state: one arena belongs to one session, and
// nested use (a subquery hash-joining while the outer join's table is live)
// is safe because tables are checked out of the free list, not shared.
type Arena struct {
	chunks [][]storage.Row
	cur    int // chunk currently being carved
	off    int // next free index in chunks[cur]
	tables []map[uint64][]storage.Row
}

// arenaChunkRows is the default chunk capacity; windows larger than this get
// a dedicated chunk.
const arenaChunkRows = 4096

// Reset recycles everything handed out since the last Reset. The caller must
// not touch previously returned windows or tables afterwards.
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
}

// window carves a zeroed n-row tuple window. Chunks already carved in this
// probe stay live (outstanding windows alias them); Reset reclaims them all.
func (a *Arena) window(n int) []storage.Row {
	if a.cur < len(a.chunks) && a.off+n > len(a.chunks[a.cur]) {
		a.cur++
		a.off = 0
	}
	if a.cur >= len(a.chunks) {
		size := arenaChunkRows
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]storage.Row, size))
		a.cur = len(a.chunks) - 1
		a.off = 0
	}
	w := a.chunks[a.cur][a.off : a.off+n : a.off+n]
	a.off += n
	for i := range w {
		w[i] = nil
	}
	return w
}

// getTable checks a hash table out of the free list (cleared) or allocates
// one sized for the build side.
func (a *Arena) getTable(sizeHint int) map[uint64][]storage.Row {
	if n := len(a.tables); n > 0 {
		t := a.tables[n-1]
		a.tables = a.tables[:n-1]
		clear(t)
		return t
	}
	return make(map[uint64][]storage.Row, sizeHint)
}

// putTable returns a hash table to the free list once the join is done with
// it.
func (a *Arena) putTable(t map[uint64][]storage.Row) {
	a.tables = append(a.tables, t)
}

// window allocates through the executor's arena when one is attached, and
// falls back to plain allocation for arena-free runs (DB.Execute, tests).
func (ex *executor) window(n int) []storage.Row {
	if ex.ar == nil {
		return make([]storage.Row, n)
	}
	return ex.ar.window(n)
}

func (ex *executor) getTable(sizeHint int) map[uint64][]storage.Row {
	if ex.ar == nil {
		return make(map[uint64][]storage.Row, sizeHint)
	}
	return ex.ar.getTable(sizeHint)
}

func (ex *executor) putTable(t map[uint64][]storage.Row) {
	if ex.ar != nil {
		ex.ar.putTable(t)
	}
}
