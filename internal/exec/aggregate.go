package exec

import (
	"strings"

	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
	"sqlbarber/internal/storage"
)

// aggState accumulates one aggregate function over one group.
type aggState struct {
	call     *sqlparser.FuncCall
	count    int64
	sum      float64
	sumIsInt bool
	sumInt   int64
	min, max sqltypes.Value
	distinct map[string]bool
	seenAny  bool
}

func newAggState(call *sqlparser.FuncCall) *aggState {
	st := &aggState{call: call, sumIsInt: true}
	if call.Distinct {
		st.distinct = map[string]bool{}
	}
	return st
}

func (st *aggState) add(v sqltypes.Value) {
	if st.call.Star {
		st.count++
		return
	}
	if v.IsNull() {
		return
	}
	if st.distinct != nil {
		k := v.String()
		if st.distinct[k] {
			return
		}
		st.distinct[k] = true
	}
	st.count++
	if v.IsNumeric() {
		st.sum += v.Float()
		if v.Kind() == sqltypes.KindInt {
			st.sumInt += v.Int()
		} else {
			st.sumIsInt = false
		}
	}
	if !st.seenAny || v.Compare(st.min) < 0 {
		st.min = v
	}
	if !st.seenAny || v.Compare(st.max) > 0 {
		st.max = v
	}
	st.seenAny = true
}

func (st *aggState) result() sqltypes.Value {
	switch st.call.Name {
	case "COUNT":
		return sqltypes.NewInt(st.count)
	case "SUM":
		if st.count == 0 {
			return sqltypes.Null
		}
		if st.sumIsInt {
			return sqltypes.NewInt(st.sumInt)
		}
		return sqltypes.NewFloat(st.sum)
	case "AVG":
		if st.count == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(st.sum / float64(st.count))
	case "MIN":
		if !st.seenAny {
			return sqltypes.Null
		}
		return st.min
	case "MAX":
		if !st.seenAny {
			return sqltypes.Null
		}
		return st.max
	}
	return sqltypes.Null
}

// collectAggCalls gathers every aggregate call appearing in the select list,
// HAVING, and ORDER BY (current level only).
func collectAggCalls(stmt *sqlparser.SelectStmt) []*sqlparser.FuncCall {
	var calls []*sqlparser.FuncCall
	var visit func(e sqlparser.Expr)
	visit = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *sqlparser.FuncCall:
			if t.IsAggregate() {
				calls = append(calls, t)
				return
			}
			for _, a := range t.Args {
				visit(a)
			}
		case *sqlparser.BinaryExpr:
			visit(t.L)
			visit(t.R)
		case *sqlparser.UnaryExpr:
			visit(t.X)
		case *sqlparser.CaseExpr:
			for _, w := range t.Whens {
				visit(w.Cond)
				visit(w.Result)
			}
			visit(t.Else)
		case *sqlparser.BetweenExpr:
			visit(t.X)
			visit(t.Lo)
			visit(t.Hi)
		case *sqlparser.InExpr:
			visit(t.X)
			for _, it := range t.List {
				visit(it)
			}
		case *sqlparser.LikeExpr:
			visit(t.X)
		case *sqlparser.IsNullExpr:
			visit(t.X)
		}
	}
	for _, it := range stmt.Items {
		visit(it.Expr)
	}
	visit(stmt.Having)
	for _, o := range stmt.OrderBy {
		visit(o.Expr)
	}
	return calls
}

// group holds one group's state during aggregation.
type group struct {
	repr   []storage.Row // representative tuple for group-key evaluation
	states []*aggState
}

// aggregate executes grouping and aggregation for aggregate queries,
// applying HAVING and ORDER BY over the aggregated output.
func (ex *executor) aggregate(q *plan.Query, parent *env, tuples [][]storage.Row) (*Result, error) {
	calls := collectAggCalls(q.Stmt)
	groups := map[string]*group{}
	var order []string // deterministic group order of first appearance
	for _, tp := range tuples {
		e := &env{q: q, rows: tp, parent: parent}
		var kb strings.Builder
		for _, g := range q.Stmt.GroupBy {
			v, err := ex.eval(g, e)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.String())
			kb.WriteByte(0)
		}
		key := kb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{repr: tp, states: make([]*aggState, len(calls))}
			for i, c := range calls {
				grp.states[i] = newAggState(c)
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, c := range calls {
			if c.Star {
				grp.states[i].add(sqltypes.Null)
				continue
			}
			v, err := ex.eval(c.Args[0], e)
			if err != nil {
				return nil, err
			}
			grp.states[i].add(v)
		}
	}
	// A global aggregate over zero rows still produces one group.
	if len(q.Stmt.GroupBy) == 0 && len(groups) == 0 {
		grp := &group{repr: ex.window(len(q.Binding.Scope.Tables)),
			states: make([]*aggState, len(calls))}
		for i, c := range calls {
			grp.states[i] = newAggState(c)
		}
		groups[""] = grp
		order = append(order, "")
	}
	cols, _ := ex.outputColumns(q)
	res := &Result{Columns: cols}
	var rows []sortable
	for _, key := range order {
		grp := groups[key]
		aggs := make(map[*sqlparser.FuncCall]sqltypes.Value, len(calls))
		for i, c := range calls {
			aggs[c] = grp.states[i].result()
		}
		e := &env{q: q, rows: grp.repr, parent: parent, aggs: aggs}
		if q.Stmt.Having != nil {
			hv, err := ex.eval(q.Stmt.Having, e)
			if err != nil {
				return nil, err
			}
			if !hv.Bool() {
				continue
			}
		}
		row := make(storage.Row, 0, len(q.Stmt.Items))
		for _, it := range q.Stmt.Items {
			if it.Star {
				return nil, rtErrf("SELECT * cannot be combined with aggregation")
			}
			v, err := ex.eval(it.Expr, e)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		keys, err := ex.orderKeys(q, e)
		if err != nil {
			return nil, err
		}
		rows = append(rows, sortable{row, keys})
	}
	sortRows(rows, q.Stmt.OrderBy)
	for _, r := range rows {
		res.Rows = append(res.Rows, r.row)
	}
	return res, nil
}
