package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sqlbarber/internal/datagen"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/storage"
)

// This file differentially tests the optimized executor (predicate pushdown,
// hash joins, residual filters) against an independent brute-force reference
// evaluator on randomly generated queries: cross-join all tables, evaluate
// the full WHERE per tuple, and project. Any divergence is a correctness bug
// in conjunct placement, join algorithms, or null handling.

// refEval evaluates a restricted query class (no aggregates, no subqueries,
// inner joins only, no distinct/order/limit) by brute force.
func refEval(t *testing.T, db *storage.Database, q *plan.Query) []storage.Row {
	t.Helper()
	stmt := q.Stmt
	// Materialize the cross product of all table instances.
	tuples := [][]storage.Row{nil}
	n := len(q.Binding.Scope.Tables)
	for ti := 0; ti < n; ti++ {
		inst := q.Binding.Scope.Tables[ti]
		tbl := db.Table(inst.Table.Name)
		var next [][]storage.Row
		for _, tp := range tuples {
			for _, r := range tbl.Rows {
				nt := make([]storage.Row, ti+1)
				copy(nt, tp)
				nt[ti] = r
				next = append(next, nt)
			}
		}
		tuples = next
	}
	// Full condition: all ON clauses AND the whole WHERE.
	ex := &executor{db: db, subCache: map[*sqlparser.SelectStmt]*Result{}}
	var conds []sqlparser.Expr
	for _, j := range stmt.Joins {
		conds = append(conds, j.On)
	}
	if stmt.Where != nil {
		conds = append(conds, stmt.Where)
	}
	var out []storage.Row
	for _, tp := range tuples {
		full := make([]storage.Row, n)
		copy(full, tp)
		e := &env{q: q, rows: full}
		keep := true
		for _, c := range conds {
			v, err := ex.eval(c, e)
			if err != nil {
				t.Fatalf("ref eval: %v", err)
			}
			if !v.Bool() {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := make(storage.Row, 0, len(stmt.Items))
		for _, it := range stmt.Items {
			v, err := ex.eval(it.Expr, e)
			if err != nil {
				t.Fatalf("ref project: %v", err)
			}
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out
}

func canonical(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// genQuery builds a random restricted query over the TPC-H schema.
func genQuery(rng *rand.Rand) string {
	type tbl struct {
		name string
		num  []string
	}
	small := []tbl{
		{"region", []string{"r_regionkey"}},
		{"nation", []string{"n_nationkey", "n_regionkey"}},
		{"supplier", []string{"s_suppkey", "s_nationkey", "s_acctbal"}},
	}
	t1 := small[rng.Intn(len(small))]
	joined := ""
	t2 := tbl{}
	switch {
	case t1.name == "nation" && rng.Intn(2) == 0:
		t2 = small[0]
		joined = " JOIN region AS b ON a.n_regionkey = b.r_regionkey"
	case t1.name == "supplier" && rng.Intn(2) == 0:
		t2 = small[1]
		joined = " JOIN nation AS b ON a.s_nationkey = b.n_nationkey"
	}
	cols := []string{}
	for _, c := range t1.num {
		cols = append(cols, "a."+c)
	}
	if joined != "" {
		for _, c := range t2.num {
			cols = append(cols, "b."+c)
		}
	}
	sel := cols[rng.Intn(len(cols))]
	ops := []string{">", "<", ">=", "<=", "=", "<>"}
	var preds []string
	for k := 0; k < 1+rng.Intn(3); k++ {
		c := cols[rng.Intn(len(cols))]
		switch rng.Intn(4) {
		case 0:
			preds = append(preds, fmt.Sprintf("%s %s %d", c, ops[rng.Intn(len(ops))], rng.Intn(30)))
		case 1:
			preds = append(preds, fmt.Sprintf("%s BETWEEN %d AND %d", c, rng.Intn(10), 10+rng.Intn(20)))
		case 2:
			preds = append(preds, fmt.Sprintf("%s IN (%d, %d, %d)", c, rng.Intn(25), rng.Intn(25), rng.Intn(25)))
		default:
			c2 := cols[rng.Intn(len(cols))]
			preds = append(preds, fmt.Sprintf("%s %s %s", c, ops[rng.Intn(len(ops))], c2))
		}
	}
	glue := " AND "
	if rng.Intn(3) == 0 {
		glue = " OR "
	}
	return "SELECT " + sel + ", " + cols[0] + " FROM " + t1.name + " AS a" + joined +
		" WHERE " + strings.Join(preds, glue)
}

func TestExecutorMatchesBruteForce(t *testing.T) {
	db := datagen.TPCH(2, 0.1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 120; i++ {
		sql := genQuery(rng)
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("query %d parse (%s): %v", i, sql, err)
		}
		q, err := plan.Build(db.Schema, stmt)
		if err != nil {
			t.Fatalf("query %d plan (%s): %v", i, sql, err)
		}
		got, err := Run(db, q)
		if err != nil {
			t.Fatalf("query %d exec (%s): %v", i, sql, err)
		}
		want := refEval(t, db, q)
		g, w := canonical(got.Rows), canonical(want)
		if len(g) != len(w) {
			t.Fatalf("query %d: %d rows vs reference %d\nSQL: %s", i, len(g), len(w), sql)
		}
		for k := range g {
			if g[k] != w[k] {
				t.Fatalf("query %d row %d: %q vs reference %q\nSQL: %s", i, k, g[k], w[k], sql)
			}
		}
	}
}

// TestCardinalityEstimateVsActual checks the optimizer's estimates stay
// within a sane factor of reality for simple range predicates — the property
// the whole cost-targeted generation pipeline leans on.
func TestCardinalityEstimateVsActual(t *testing.T) {
	db := datagen.TPCH(2, 0.1)
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		cutoff := int(1500 * frac) // orders has 1500 rows at sf 0.1
		sql := fmt.Sprintf("SELECT o_orderkey FROM orders WHERE o_orderkey <= %d", cutoff)
		stmt, _ := sqlparser.Parse(sql)
		q, err := plan.Build(db.Schema, stmt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(db, q)
		if err != nil {
			t.Fatal(err)
		}
		actual := float64(len(res.Rows))
		est := q.EstimatedRows()
		if est < actual*0.7 || est > actual*1.4 {
			t.Errorf("frac %.2f: estimate %.0f vs actual %.0f (off by > 40%%)", frac, est, actual)
		}
	}
}

func TestAggregateMatchesManualComputation(t *testing.T) {
	db := datagen.TPCH(2, 0.05)
	// Manual: sum of o_totalprice grouped by status, via raw storage access.
	orders := db.Table("orders")
	statusIdx := orders.Meta.ColumnIndex("o_orderstatus")
	priceIdx := orders.Meta.ColumnIndex("o_totalprice")
	wantSum := map[string]float64{}
	wantCount := map[string]int64{}
	for _, r := range orders.Rows {
		s := r[statusIdx].Str()
		wantSum[s] += r[priceIdx].Float()
		wantCount[s]++
	}
	stmt, _ := sqlparser.Parse("SELECT o_orderstatus, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY o_orderstatus")
	q, _ := plan.Build(db.Schema, stmt)
	res, err := Run(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(wantSum) {
		t.Fatalf("groups %d vs %d", len(res.Rows), len(wantSum))
	}
	for _, r := range res.Rows {
		s := r[0].Str()
		if r[1].Int() != wantCount[s] {
			t.Errorf("status %s count %v, want %v", s, r[1], wantCount[s])
		}
		diff := r[2].Float() - wantSum[s]
		if diff > 1e-6 || diff < -1e-6 {
			t.Errorf("status %s sum %v, want %v", s, r[2], wantSum[s])
		}
	}
}
