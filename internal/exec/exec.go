// Package exec implements the embedded engine's query executor. It runs
// planned queries (see internal/plan) against the in-memory store,
// supporting filters, hash and nested-loop joins, left joins, grouping and
// aggregation, HAVING, DISTINCT, ORDER BY, LIMIT, and correlated and
// uncorrelated subqueries.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
	"sqlbarber/internal/storage"
)

// Result is the output of executing a query.
type Result struct {
	Columns []string
	Rows    []storage.Row
	// RowsTouched counts tuples processed while executing the query (rows
	// scanned plus intermediate join tuples) — a deterministic
	// execution-effort metric usable as a query cost (Definition 2.10's
	// "actual measurements" option).
	RowsTouched int64
}

// RuntimeError reports an execution-time failure.
type RuntimeError struct {
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return e.Msg }

func rtErrf(format string, args ...any) *RuntimeError {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// Run executes a planned query against the database.
func Run(db *storage.Database, q *plan.Query) (*Result, error) {
	ex := &executor{db: db, subCache: map[*sqlparser.SelectStmt]*Result{}}
	res, err := ex.runQuery(q, nil)
	if err != nil {
		return nil, err
	}
	res.RowsTouched = ex.rowsTouched
	return res, nil
}

// RunBound executes a compiled plan at one probe's value environment: slot
// literals resolve through the bound view, the shared skeleton AST is never
// written. Results are identical to Run over a plan built from the
// value-substituted statement.
func RunBound(db *storage.Database, bp *plan.BoundPlan) (*Result, error) {
	return RunBoundArena(db, bp, nil)
}

// RunBoundArena is RunBound drawing per-probe scratch (tuple windows, join
// hash tables) from the caller's arena. The caller resets the arena between
// probes; the returned Result owns its rows and survives the reset.
func RunBoundArena(db *storage.Database, bp *plan.BoundPlan, a *Arena) (*Result, error) {
	ex := &executor{db: db, subCache: map[*sqlparser.SelectStmt]*Result{}, bound: bp, ar: a}
	res, err := ex.runQuery(bp.Query(), nil)
	if err != nil {
		return nil, err
	}
	res.RowsTouched = ex.rowsTouched
	return res, nil
}

type executor struct {
	db       *storage.Database
	subCache map[*sqlparser.SelectStmt]*Result
	// bound, when set, is the probe's immutable value environment: literal
	// slots evaluate through it instead of the AST's neutral compile-time
	// values.
	bound *plan.BoundPlan
	// ar, when set, supplies per-probe scratch; nil falls back to plain
	// allocation.
	ar          *Arena
	rowsTouched int64
}

// env is the tuple environment: one row per table instance of the current
// query, chained to the enclosing query's env for correlated subqueries.
type env struct {
	q      *plan.Query
	rows   []storage.Row
	parent *env
	// aggs maps aggregate calls to their computed group values during
	// post-aggregation expression evaluation.
	aggs map[*sqlparser.FuncCall]sqltypes.Value
}

func (e *env) lookup(ref plan.ColRef) sqltypes.Value {
	cur := e
	for l := 0; l < ref.Level; l++ {
		if cur.parent == nil {
			return sqltypes.Null
		}
		cur = cur.parent
	}
	if ref.TableIdx >= len(cur.rows) || cur.rows[ref.TableIdx] == nil {
		return sqltypes.Null
	}
	return cur.rows[ref.TableIdx][ref.ColIdx]
}

func (ex *executor) runQuery(q *plan.Query, parent *env) (*Result, error) {
	tuples, err := ex.joinPipeline(q, parent)
	if err != nil {
		return nil, err
	}
	// Residual predicates (multi-table and subquery conjuncts).
	if len(q.Residual) > 0 {
		filtered := tuples[:0]
		for _, tp := range tuples {
			e := &env{q: q, rows: tp, parent: parent}
			keep := true
			for _, c := range q.Residual {
				v, err := ex.eval(c, e)
				if err != nil {
					return nil, err
				}
				if !v.Bool() {
					keep = false
					break
				}
			}
			if keep {
				filtered = append(filtered, tp)
			}
		}
		tuples = filtered
	}
	var out *Result
	if plan.IsAggregateQuery(q.Stmt) {
		out, err = ex.aggregate(q, parent, tuples)
	} else {
		out, err = ex.project(q, parent, tuples)
	}
	if err != nil {
		return nil, err
	}
	if q.Stmt.Distinct {
		out.Rows = dedupe(out.Rows)
	}
	if q.Stmt.Limit >= 0 && len(out.Rows) > q.Stmt.Limit {
		out.Rows = out.Rows[:q.Stmt.Limit]
	}
	return out, nil
}

// joinPipeline scans and joins all table instances, producing tuples of one
// row per instance.
func (ex *executor) joinPipeline(q *plan.Query, parent *env) ([][]storage.Row, error) {
	n := len(q.Binding.Scope.Tables)
	scan := func(idx int) ([]storage.Row, error) {
		inst := q.Binding.Scope.Tables[idx]
		tbl := ex.db.Table(inst.Table.Name)
		if tbl == nil {
			return nil, rtErrf("relation %q has no storage", inst.Table.Name)
		}
		ex.rowsTouched += int64(len(tbl.Rows))
		filters := q.ScanFilters[idx]
		if len(filters) == 0 {
			return tbl.Rows, nil
		}
		var out []storage.Row
		e := &env{q: q, rows: ex.window(n), parent: parent}
		for _, r := range tbl.Rows {
			e.rows[idx] = r
			keep := true
			for _, f := range filters {
				v, err := ex.eval(f, e)
				if err != nil {
					return nil, err
				}
				if !v.Bool() {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, r)
			}
		}
		return out, nil
	}
	left, err := scan(0)
	if err != nil {
		return nil, err
	}
	tuples := make([][]storage.Row, len(left))
	for i, r := range left {
		tp := ex.window(n)
		tp[0] = r
		tuples[i] = tp
	}
	for ji := range q.Stmt.Joins {
		rightIdx := ji + 1
		right, err := scan(rightIdx)
		if err != nil {
			return nil, err
		}
		tuples, err = ex.joinStep(q, parent, tuples, right, ji, rightIdx, n)
		if err != nil {
			return nil, err
		}
	}
	return tuples, nil
}

func (ex *executor) joinStep(q *plan.Query, parent *env, tuples [][]storage.Row, right []storage.Row, ji, rightIdx, n int) ([][]storage.Row, error) {
	isLeft := q.Stmt.Joins[ji].Type == sqlparser.JoinLeft
	extra := q.JoinExtra[ji]
	e := &env{q: q, rows: ex.window(n), parent: parent}
	checkExtra := func(tp []storage.Row, r storage.Row) (bool, error) {
		copy(e.rows, tp)
		e.rows[rightIdx] = r
		for _, c := range extra {
			v, err := ex.eval(c, e)
			if err != nil {
				return false, err
			}
			if !v.Bool() {
				return false, nil
			}
		}
		return true, nil
	}
	var out [][]storage.Row
	emit := func(tp []storage.Row, r storage.Row) {
		nt := ex.window(n)
		copy(nt, tp)
		nt[rightIdx] = r
		out = append(out, nt)
		ex.rowsTouched++
	}
	if ek := q.JoinEqui[ji]; ek != nil {
		lref := q.Binding.Cols[ek.Left]
		rref := q.Binding.Cols[ek.Right]
		ht := ex.getTable(len(right))
		for _, r := range right {
			v := r[rref.ColIdx]
			if v.IsNull() {
				continue
			}
			h := v.Hash()
			ht[h] = append(ht[h], r)
		}
		for _, tp := range tuples {
			lrow := tp[lref.TableIdx]
			var lv sqltypes.Value
			if lrow != nil {
				lv = lrow[lref.ColIdx]
			}
			matched := false
			if !lv.IsNull() {
				for _, r := range ht[lv.Hash()] {
					if !lv.Equal(r[rref.ColIdx]) {
						continue
					}
					ok, err := checkExtra(tp, r)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						emit(tp, r)
					}
				}
			}
			if isLeft && !matched {
				emit(tp, nil)
			}
		}
		ex.putTable(ht)
		return out, nil
	}
	// Nested loop with arbitrary ON predicate (checkExtra holds all conds).
	for _, tp := range tuples {
		matched := false
		for _, r := range right {
			ok, err := checkExtra(tp, r)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				emit(tp, r)
			}
		}
		if isLeft && !matched {
			emit(tp, nil)
		}
	}
	return out, nil
}

// project evaluates the select list per tuple (non-aggregate queries) and
// applies ORDER BY.
func (ex *executor) project(q *plan.Query, parent *env, tuples [][]storage.Row) (*Result, error) {
	cols, starCols := ex.outputColumns(q)
	res := &Result{Columns: cols}
	var rows []sortable
	for _, tp := range tuples {
		e := &env{q: q, rows: tp, parent: parent}
		row := make(storage.Row, 0, len(cols))
		for _, it := range q.Stmt.Items {
			if it.Star {
				for _, sc := range starCols {
					row = append(row, e.lookup(sc))
				}
				continue
			}
			v, err := ex.eval(it.Expr, e)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		keys, err := ex.orderKeys(q, e)
		if err != nil {
			return nil, err
		}
		rows = append(rows, sortable{row, keys})
	}
	sortRows(rows, q.Stmt.OrderBy)
	for _, r := range rows {
		res.Rows = append(res.Rows, r.row)
	}
	return res, nil
}

// sortable pairs an output row with its ORDER BY keys.
type sortable struct {
	row  storage.Row
	keys []sqltypes.Value
}

func sortRows(rows []sortable, order []sqlparser.OrderItem) {
	if len(order) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k := range order {
			c := rows[i].keys[k].Compare(rows[j].keys[k])
			if c == 0 {
				continue
			}
			if order[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func (ex *executor) orderKeys(q *plan.Query, e *env) ([]sqltypes.Value, error) {
	if len(q.Stmt.OrderBy) == 0 {
		return nil, nil
	}
	keys := make([]sqltypes.Value, len(q.Stmt.OrderBy))
	for i, o := range q.Stmt.OrderBy {
		v, err := ex.eval(o.Expr, e)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// outputColumns derives output column names and, for star items, the column
// refs to expand.
func (ex *executor) outputColumns(q *plan.Query) ([]string, []plan.ColRef) {
	var cols []string
	var starCols []plan.ColRef
	for _, it := range q.Stmt.Items {
		if it.Star {
			for ti, inst := range q.Binding.Scope.Tables {
				for ci, c := range inst.Table.Columns {
					cols = append(cols, c.Name)
					starCols = append(starCols, plan.ColRef{TableIdx: ti, ColIdx: ci})
				}
			}
			continue
		}
		switch {
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				cols = append(cols, cr.Name)
			} else {
				cols = append(cols, it.Expr.SQL())
			}
		}
	}
	return cols, starCols
}

func dedupe(rows []storage.Row) []storage.Row {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte(0)
		}
		k := b.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
