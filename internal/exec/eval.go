package exec

import (
	"strings"

	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// eval evaluates an expression in the given tuple environment.
func (ex *executor) eval(e sqlparser.Expr, en *env) (sqltypes.Value, error) {
	switch t := e.(type) {
	case *sqlparser.Literal:
		if ex.bound != nil {
			if v, ok := ex.bound.LiteralValue(t); ok {
				return v, nil
			}
		}
		return t.Value, nil
	case *sqlparser.Placeholder:
		return sqltypes.Null, rtErrf("placeholder {%s} reached the executor", t.Name)
	case *sqlparser.ColumnRef:
		if ref, ok := en.q.Binding.Cols[t]; ok {
			return en.lookup(ref), nil
		}
		// Output-alias reference resolved through the alias map.
		if alias, ok := en.q.Binding.Aliases[strings.ToLower(t.Name)]; ok {
			return ex.eval(alias, en)
		}
		return sqltypes.Null, rtErrf("unresolved column %q", t.Name)
	case *sqlparser.BinaryExpr:
		return ex.evalBinary(t, en)
	case *sqlparser.UnaryExpr:
		v, err := ex.eval(t.X, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if t.Op == "NOT" {
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(!v.Bool()), nil
		}
		return v.Neg(), nil
	case *sqlparser.FuncCall:
		if t.IsAggregate() {
			if en.aggs != nil {
				if v, ok := en.aggs[t]; ok {
					return v, nil
				}
			}
			return sqltypes.Null, rtErrf("aggregate %s evaluated outside aggregation context", t.Name)
		}
		return ex.evalScalarFunc(t, en)
	case *sqlparser.CaseExpr:
		for _, w := range t.Whens {
			c, err := ex.eval(w.Cond, en)
			if err != nil {
				return sqltypes.Null, err
			}
			if c.Bool() {
				return ex.eval(w.Result, en)
			}
		}
		if t.Else != nil {
			return ex.eval(t.Else, en)
		}
		return sqltypes.Null, nil
	case *sqlparser.BetweenExpr:
		x, err := ex.eval(t.X, en)
		if err != nil {
			return sqltypes.Null, err
		}
		lo, err := ex.eval(t.Lo, en)
		if err != nil {
			return sqltypes.Null, err
		}
		hi, err := ex.eval(t.Hi, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if x.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqltypes.Null, nil
		}
		in := x.Compare(lo) >= 0 && x.Compare(hi) <= 0
		return sqltypes.NewBool(in != t.Not), nil
	case *sqlparser.LikeExpr:
		x, err := ex.eval(t.X, en)
		if err != nil {
			return sqltypes.Null, err
		}
		p, err := ex.eval(t.Pattern, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if x.IsNull() || p.IsNull() {
			return sqltypes.Null, nil
		}
		m := likeMatch(x.String(), p.String())
		return sqltypes.NewBool(m != t.Not), nil
	case *sqlparser.IsNullExpr:
		x, err := ex.eval(t.X, en)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(x.IsNull() != t.Not), nil
	case *sqlparser.InExpr:
		return ex.evalIn(t, en)
	case *sqlparser.ExistsExpr:
		res, err := ex.runSub(t.Sub, en)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool((len(res.Rows) > 0) != t.Not), nil
	case *sqlparser.SubqueryExpr:
		res, err := ex.runSub(t.Sub, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
			return sqltypes.Null, nil
		}
		if len(res.Rows) > 1 {
			return sqltypes.Null, rtErrf("scalar subquery returned more than one row")
		}
		return res.Rows[0][0], nil
	}
	return sqltypes.Null, rtErrf("unsupported expression %T", e)
}

func (ex *executor) evalBinary(t *sqlparser.BinaryExpr, en *env) (sqltypes.Value, error) {
	switch t.Op {
	case sqlparser.OpAnd:
		l, err := ex.eval(t.L, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if !l.IsNull() && !l.Bool() {
			return sqltypes.NewBool(false), nil
		}
		r, err := ex.eval(t.R, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if !r.IsNull() && !r.Bool() {
			return sqltypes.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(true), nil
	case sqlparser.OpOr:
		l, err := ex.eval(t.L, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if !l.IsNull() && l.Bool() {
			return sqltypes.NewBool(true), nil
		}
		r, err := ex.eval(t.R, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if !r.IsNull() && r.Bool() {
			return sqltypes.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(false), nil
	}
	l, err := ex.eval(t.L, en)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := ex.eval(t.R, en)
	if err != nil {
		return sqltypes.Null, err
	}
	if t.Op.IsComparison() {
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		c := l.Compare(r)
		var b bool
		switch t.Op {
		case sqlparser.OpEq:
			b = c == 0
		case sqlparser.OpNe:
			b = c != 0
		case sqlparser.OpLt:
			b = c < 0
		case sqlparser.OpLe:
			b = c <= 0
		case sqlparser.OpGt:
			b = c > 0
		case sqlparser.OpGe:
			b = c >= 0
		}
		return sqltypes.NewBool(b), nil
	}
	switch t.Op {
	case sqlparser.OpAdd:
		return l.Add(r), nil
	case sqlparser.OpSub:
		return l.Sub(r), nil
	case sqlparser.OpMul:
		return l.Mul(r), nil
	case sqlparser.OpDiv:
		return l.Div(r), nil
	case sqlparser.OpMod:
		return l.Mod(r), nil
	}
	return sqltypes.Null, rtErrf("unsupported operator %s", t.Op)
}

func (ex *executor) evalIn(t *sqlparser.InExpr, en *env) (sqltypes.Value, error) {
	x, err := ex.eval(t.X, en)
	if err != nil {
		return sqltypes.Null, err
	}
	if x.IsNull() {
		return sqltypes.Null, nil
	}
	if t.Sub != nil {
		res, err := ex.runSub(t.Sub, en)
		if err != nil {
			return sqltypes.Null, err
		}
		for _, r := range res.Rows {
			if len(r) > 0 && x.Equal(r[0]) {
				return sqltypes.NewBool(!t.Not), nil
			}
		}
		return sqltypes.NewBool(t.Not), nil
	}
	for _, item := range t.List {
		v, err := ex.eval(item, en)
		if err != nil {
			return sqltypes.Null, err
		}
		if x.Equal(v) {
			return sqltypes.NewBool(!t.Not), nil
		}
	}
	return sqltypes.NewBool(t.Not), nil
}

// evalScalarFunc implements the non-aggregate builtins.
func (ex *executor) evalScalarFunc(t *sqlparser.FuncCall, en *env) (sqltypes.Value, error) {
	args := make([]sqltypes.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := ex.eval(a, en)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	switch t.Name {
	case "ABS":
		if len(args) == 1 && args[0].IsNumeric() {
			if args[0].Float() < 0 {
				return args[0].Neg(), nil
			}
			return args[0], nil
		}
	case "ROUND":
		if len(args) >= 1 && args[0].IsNumeric() {
			f := args[0].Float()
			if f < 0 {
				return sqltypes.NewFloat(float64(int64(f - 0.5))), nil
			}
			return sqltypes.NewFloat(float64(int64(f + 0.5))), nil
		}
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqltypes.Null, nil
	case "LENGTH":
		if len(args) == 1 {
			return sqltypes.NewInt(int64(len(args[0].String()))), nil
		}
	case "UPPER":
		if len(args) == 1 {
			return sqltypes.NewString(strings.ToUpper(args[0].String())), nil
		}
	case "LOWER":
		if len(args) == 1 {
			return sqltypes.NewString(strings.ToLower(args[0].String())), nil
		}
	}
	return sqltypes.Null, rtErrf("function %q does not exist", t.Name)
}

// runSub executes a nested SELECT, caching results of uncorrelated
// subqueries for the lifetime of the outer statement.
func (ex *executor) runSub(sub *sqlparser.SelectStmt, en *env) (*Result, error) {
	sq, ok := en.q.Subplans[sub]
	if !ok {
		return nil, rtErrf("subquery was not planned")
	}
	correlated := isCorrelated(sq)
	if !correlated {
		if res, ok := ex.subCache[sub]; ok {
			return res, nil
		}
	}
	res, err := ex.runQuery(sq, en)
	if err != nil {
		return nil, err
	}
	if !correlated {
		ex.subCache[sub] = res
	}
	return res, nil
}

// isCorrelated reports whether the subquery references outer columns.
func isCorrelated(q *plan.Query) bool {
	for _, ref := range q.Binding.Cols {
		if ref.Level > 0 {
			return true
		}
	}
	for _, sp := range q.Subplans {
		if isCorrelated(sp) {
			return true
		}
	}
	return false
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		if s == "" {
			return false
		}
		return likeRec(s[1:], p[1:])
	default:
		if s == "" || s[0] != p[0] {
			return false
		}
		return likeRec(s[1:], p[1:])
	}
}
