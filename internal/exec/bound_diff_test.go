package exec_test

import (
	"context"
	"strings"
	"testing"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/exec"
	"sqlbarber/internal/generator"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/prand"
	"sqlbarber/internal/profiler"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
	"sqlbarber/internal/stats"
	"sqlbarber/internal/storage"
)

// TestBoundExecutionMatchesMaterializedDifferential is the equivalence fuzz
// for value-environment execution: for generated templates across both
// evaluation schemas and a spread of specification shapes, executing the
// compiled skeleton under an immutable value environment (BindEnv + RunBound,
// and again through a reused arena) must return exactly the same result rows
// and RowsProcessed as the literal-materialized reference — rendering the
// binding into SQL, re-parsing, re-planning, and running the old Run path.
// Bindings are LHS-sampled from each template's derived search space, the
// same regions §5.1 profiling and §5.3 BO probing execute.
func TestBoundExecutionMatchesMaterializedDifferential(t *testing.T) {
	datasets := []struct {
		name string
		open func(int64) *engine.DB
	}{
		{"tpch", func(seed int64) *engine.DB { return engine.OpenTPCH(seed, 0.02) }},
		{"imdb", func(seed int64) *engine.DB { return engine.OpenIMDB(seed, 0.02) }},
	}
	specShapes := []spec.Spec{
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(1)},
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), NestedQuery: spec.Bool(true)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(1), GroupBy: spec.Bool(true), NumAggregations: spec.Int(2)},
		{NumJoins: spec.Int(2), NumPredicates: spec.Int(3)},
		{NumJoins: spec.Int(2), NumPredicates: spec.Int(2), NestedQuery: spec.Bool(true), GroupBy: spec.Bool(true)},
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), ComplexScalar: spec.Bool(true)},
	}
	const probesPerTemplate = 8
	compared := 0
	var arena exec.Arena
	for _, ds := range datasets {
		for seed := int64(1); seed <= 3; seed++ {
			db := ds.open(seed)
			schema := db.Schema()
			store := db.Store()
			gen := generator.New(db, llm.NewSim(llm.Perfect(seed)), generator.Options{Seed: seed})
			for si, s := range specShapes {
				res, err := gen.Generate(context.Background(), s)
				if err != nil {
					t.Fatalf("%s seed %d spec %d: generate: %v", ds.name, seed, si, err)
				}
				if !res.Valid {
					t.Fatalf("%s seed %d spec %d: invalid template:\n%s", ds.name, seed, si, res.Template.SQL())
				}
				tmpl := res.Template

				stmt, err := sqlparser.Parse(tmpl.SQL())
				if err != nil {
					t.Fatalf("%s seed %d spec %d: parse template: %v", ds.name, seed, si, err)
				}
				cq, err := plan.Compile(schema, stmt)
				if err != nil {
					t.Fatalf("%s seed %d spec %d: compile: %v\n%s", ds.name, seed, si, err, tmpl.SQL())
				}

				bindings, err := tmpl.BindPlaceholders(schema)
				if err != nil {
					t.Fatalf("%s seed %d spec %d: bind placeholders: %v", ds.name, seed, si, err)
				}
				check := func(pi int, vals map[string]sqltypes.Value, sql string) {
					t.Helper()
					ref, refErr := runMaterialized(t, store, schema, sql)
					bp, err := cq.BindEnv(vals)
					if err != nil {
						t.Fatalf("%s seed %d spec %d probe %d: BindEnv: %v", ds.name, seed, si, pi, err)
					}
					got, gotErr := exec.RunBound(store, bp)
					if (refErr == nil) != (gotErr == nil) {
						t.Fatalf("%s seed %d spec %d probe %d: error divergence: ref %v, bound %v\n%s",
							ds.name, seed, si, pi, refErr, gotErr, sql)
					}
					if refErr != nil {
						return
					}
					compareResults(t, ds.name, seed, si, pi, "RunBound", sql, ref, got)
					arena.Reset()
					gotA, err := exec.RunBoundArena(store, bp, &arena)
					if err != nil {
						t.Fatalf("%s seed %d spec %d probe %d: RunBoundArena: %v", ds.name, seed, si, pi, err)
					}
					compareResults(t, ds.name, seed, si, pi, "RunBoundArena", sql, ref, gotA)
					compared++
				}
				if len(bindings) == 0 {
					check(0, nil, tmpl.SQL())
					continue
				}
				space, err := profiler.BuildSearchSpace(tmpl, bindings)
				if err != nil {
					t.Fatalf("%s seed %d spec %d: search space: %v", ds.name, seed, si, err)
				}
				boSpace := space.BOSpace()
				rng := prand.New(seed, prand.StageProfile, prand.HashString(tmpl.SQL()))
				for pi, u := range stats.LatinHypercube(rng, probesPerTemplate, len(space.Dims)) {
					raw := boSpace.Denormalize(u)
					vals := space.ValuesFor(raw)
					sql, err := tmpl.Instantiate(vals)
					if err != nil {
						t.Fatalf("%s seed %d spec %d probe %d: instantiate: %v", ds.name, seed, si, pi, err)
					}
					check(pi, vals, sql)
				}
			}
		}
	}
	if compared < 300 {
		t.Fatalf("differential fuzz compared only %d probes; expected at least 300", compared)
	}
	t.Logf("differential fuzz: %d bound-vs-materialized executions, all identical", compared)
}

// runMaterialized is the test-only reference implementation: the
// pre-session literal-materialized path — parse the rendered SQL, plan it
// fresh, execute through plain Run.
func runMaterialized(t *testing.T, store *storage.Database, schema *catalog.Schema, sql string) (*exec.Result, error) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse rendered SQL: %v\n%s", err, sql)
	}
	q, err := plan.Build(schema, stmt)
	if err != nil {
		t.Fatalf("build rendered SQL: %v\n%s", err, sql)
	}
	return exec.Run(store, q)
}

// compareResults asserts exact equality of row count, RowsProcessed, and
// every output value. Column *names* are allowed to differ: a select item
// containing a parameter slot renders its compile-time neutral literal in the
// skeleton, which never affects data.
func compareResults(t *testing.T, ds string, seed int64, si, pi int, arm, sql string, ref, got *exec.Result) {
	t.Helper()
	if got.RowsTouched != ref.RowsTouched {
		t.Fatalf("%s seed %d spec %d probe %d (%s): RowsProcessed %d != %d\n%s",
			ds, seed, si, pi, arm, got.RowsTouched, ref.RowsTouched, sql)
	}
	if len(got.Rows) != len(ref.Rows) {
		t.Fatalf("%s seed %d spec %d probe %d (%s): %d rows != %d rows\n%s",
			ds, seed, si, pi, arm, len(got.Rows), len(ref.Rows), sql)
	}
	for ri := range ref.Rows {
		if renderRow(got.Rows[ri]) != renderRow(ref.Rows[ri]) {
			t.Fatalf("%s seed %d spec %d probe %d (%s): row %d diverged:\n  bound: %s\n  ref:   %s\n%s",
				ds, seed, si, pi, arm, ri, renderRow(got.Rows[ri]), renderRow(ref.Rows[ri]), sql)
		}
	}
}

func renderRow(r []sqltypes.Value) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.String())
		b.WriteByte('|')
	}
	return b.String()
}
