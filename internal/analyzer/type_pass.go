package analyzer

import (
	"fmt"

	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// TypePass infers operand kinds from the catalog and flags comparisons whose
// two sides can never be meaningfully compared (string vs numeric) and
// numeric aggregates applied to string columns. Inference is deliberately
// conservative: a diagnostic fires only when both kinds are statically
// certain, so valid templates never trip it.
type TypePass struct{}

// Name implements Pass.
func (TypePass) Name() string { return "types" }

// exprKind infers the kind of e within scope sc; known=false means the kind
// cannot be statically determined (placeholders, CASE, unresolved columns).
func exprKind(sc *scope, e sqlparser.Expr) (kind sqltypes.Kind, known bool) {
	switch t := e.(type) {
	case *sqlparser.Literal:
		k := t.Value.Kind()
		if k == sqltypes.KindNull {
			return 0, false
		}
		return k, true
	case *sqlparser.ColumnRef:
		_, col, st := sc.resolve(t)
		if st != resolved || col == nil {
			return 0, false
		}
		return col.Type.Kind(), true
	case *sqlparser.Placeholder:
		return 0, false
	case *sqlparser.UnaryExpr:
		if t.Op == "-" {
			return exprKind(sc, t.X)
		}
		return sqltypes.KindBool, true
	case *sqlparser.BinaryExpr:
		if t.Op.IsComparison() || t.Op == sqlparser.OpAnd || t.Op == sqlparser.OpOr {
			return sqltypes.KindBool, true
		}
		// Arithmetic: numeric when both operands are known numerics.
		lk, lok := exprKind(sc, t.L)
		rk, rok := exprKind(sc, t.R)
		if lok && rok && isNumericKind(lk) && isNumericKind(rk) {
			if lk == sqltypes.KindInt && rk == sqltypes.KindInt && t.Op != sqlparser.OpDiv {
				return sqltypes.KindInt, true
			}
			return sqltypes.KindFloat, true
		}
		return 0, false
	case *sqlparser.FuncCall:
		switch t.Name {
		case "COUNT":
			return sqltypes.KindInt, true
		case "SUM", "AVG":
			return sqltypes.KindFloat, true
		case "MIN", "MAX":
			if len(t.Args) == 1 {
				return exprKind(sc, t.Args[0])
			}
		}
		return 0, false
	case *sqlparser.InExpr, *sqlparser.ExistsExpr, *sqlparser.BetweenExpr,
		*sqlparser.LikeExpr, *sqlparser.IsNullExpr:
		return sqltypes.KindBool, true
	}
	return 0, false
}

func isNumericKind(k sqltypes.Kind) bool {
	return k == sqltypes.KindInt || k == sqltypes.KindFloat
}

// comparable reports whether two statically-known kinds can be compared.
func comparableKinds(a, b sqltypes.Kind) bool {
	if a == b {
		return true
	}
	return isNumericKind(a) && isNumericKind(b)
}

// Run implements Pass.
func (TypePass) Run(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	report := func(span Span, l, r sqlparser.Expr, lk, rk sqltypes.Kind) {
		diags = append(diags, Diagnostic{
			Code: CodeComparisonTypeMismatch, Severity: Error, Span: span,
			Msg: fmt.Sprintf("cannot compare %s (%s) with %s (%s)", l.SQL(), lk, r.SQL(), rk),
			Fix: "compare the column against a value of its own type",
		})
	}
	ctx.EachSelect(func(s *sqlparser.SelectStmt, sc *scope) {
		for _, ce := range topExprs(s) {
			walkLevel(ce.expr, func(e sqlparser.Expr) {
				switch t := e.(type) {
				case *sqlparser.BinaryExpr:
					if !t.Op.IsComparison() {
						return
					}
					lk, lok := exprKind(sc, t.L)
					rk, rok := exprKind(sc, t.R)
					if lok && rok && !comparableKinds(lk, rk) {
						report(ctx.SpanOf(t), t.L, t.R, lk, rk)
					}
				case *sqlparser.BetweenExpr:
					xk, xok := exprKind(sc, t.X)
					if !xok {
						return
					}
					for _, bound := range []sqlparser.Expr{t.Lo, t.Hi} {
						bk, bok := exprKind(sc, bound)
						if bok && !comparableKinds(xk, bk) {
							report(ctx.SpanOf(t), t.X, bound, xk, bk)
						}
					}
				case *sqlparser.InExpr:
					xk, xok := exprKind(sc, t.X)
					if !xok {
						return
					}
					for _, item := range t.List {
						ik, iok := exprKind(sc, item)
						if iok && !comparableKinds(xk, ik) {
							report(ctx.SpanOf(t), t.X, item, xk, ik)
						}
					}
				case *sqlparser.FuncCall:
					if (t.Name == "SUM" || t.Name == "AVG") && len(t.Args) == 1 && !t.Star {
						ak, aok := exprKind(sc, t.Args[0])
						if aok && !isNumericKind(ak) {
							diags = append(diags, Diagnostic{
								Code: CodeAggregateArgType, Severity: Error, Span: ctx.SpanOf(t),
								Msg: fmt.Sprintf("%s requires a numeric argument, got %s (%s)", t.Name, t.Args[0].SQL(), ak),
								Fix: "aggregate a numeric column, or use COUNT/MIN/MAX for strings",
							})
						}
					}
				}
			})
		}
	})
	return diags
}
