package analyzer

import (
	"fmt"
	"strings"

	"sqlbarber/internal/sqlparser"
)

// AggregatePass enforces aggregate placement and GROUP BY conformance:
// aggregates in WHERE/GROUP BY, nested aggregates, HAVING without grouping,
// and ungrouped select-list columns. The first three mirror DBMS rejections
// (Error); ungrouped columns are a Warning because the embedded engine —
// like SQLite or MySQL without ONLY_FULL_GROUP_BY — tolerates them.
type AggregatePass struct{}

// Name implements Pass.
func (AggregatePass) Name() string { return "aggregates" }

// Run implements Pass.
func (AggregatePass) Run(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	ctx.EachSelect(func(s *sqlparser.SelectStmt, sc *scope) {
		if s.Where != nil && containsAggregate(s.Where) {
			diags = append(diags, Diagnostic{
				Code: CodeAggregateInWhere, Severity: Error, Span: ctx.SpanOf(s.Where),
				Msg: "aggregate functions are not allowed in WHERE",
				Fix: "move the aggregate condition into a HAVING clause",
			})
		}
		for _, g := range s.GroupBy {
			if containsAggregate(g) {
				diags = append(diags, Diagnostic{
					Code: CodeAggregateInGroupBy, Severity: Error, Span: ctx.SpanOf(g),
					Msg: "aggregate functions are not allowed in GROUP BY",
					Fix: "group by the underlying column instead of the aggregate",
				})
			}
		}
		if s.Having != nil && len(s.GroupBy) == 0 && !selectListAggregates(s) {
			diags = append(diags, Diagnostic{
				Code: CodeHavingWithoutGroup, Severity: Error, Span: ctx.SpanOf(s.Having),
				Msg: "HAVING requires GROUP BY or aggregates",
				Fix: "add a GROUP BY clause or move the condition to WHERE",
			})
		}
		// Nested aggregates: an aggregate call inside another's argument.
		for _, ce := range topExprs(s) {
			walkLevel(ce.expr, func(e sqlparser.Expr) {
				f, ok := e.(*sqlparser.FuncCall)
				if !ok || !f.IsAggregate() {
					return
				}
				for _, a := range f.Args {
					if containsAggregate(a) {
						diags = append(diags, Diagnostic{
							Code: CodeNestedAggregate, Severity: Error, Span: ctx.SpanOf(f),
							Msg: fmt.Sprintf("aggregate calls cannot be nested: %s", f.SQL()),
							Fix: "aggregate the raw column in a subquery, then aggregate its result",
						})
					}
				}
			})
		}
		// GROUP BY conformance (warning tier).
		if len(s.GroupBy) > 0 {
			grouped := map[string]bool{}
			for _, g := range s.GroupBy {
				grouped[strings.ToLower(g.SQL())] = true
			}
			for _, it := range s.Items {
				if it.Expr == nil || containsAggregate(it.Expr) {
					continue
				}
				if grouped[strings.ToLower(it.Expr.SQL())] {
					continue
				}
				if it.Alias != "" && grouped[strings.ToLower(it.Alias)] {
					continue
				}
				// Flag only items that reference a column at this level.
				hasCol := false
				walkLevel(it.Expr, func(e sqlparser.Expr) {
					if _, ok := e.(*sqlparser.ColumnRef); ok {
						hasCol = true
					}
				})
				if hasCol {
					diags = append(diags, Diagnostic{
						Code: CodeUngroupedColumn, Severity: Warning, Span: ctx.SpanOf(it.Expr),
						Msg: fmt.Sprintf("select item %s is neither aggregated nor in GROUP BY", it.Expr.SQL()),
						Fix: "add it to GROUP BY or wrap it in an aggregate",
					})
				}
			}
		}
	})
	return diags
}

// selectListAggregates reports whether any select item aggregates.
func selectListAggregates(s *sqlparser.SelectStmt) bool {
	for _, it := range s.Items {
		if it.Expr != nil && containsAggregate(it.Expr) {
			return true
		}
	}
	return false
}
