package analyzer

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities, ordered by gravity.
const (
	// Info diagnostics are observations that never block a template.
	Info Severity = iota
	// Warning diagnostics flag suspicious structure (cartesian joins,
	// trivially-true predicates) that an engine would accept.
	Warning
	// Error diagnostics mean the template cannot pass downstream validation:
	// it would be rejected by the LLM judge (spec violation) or by the DBMS
	// (binding/type failure), so the check-and-rewrite loop can skip those
	// expensive calls entirely.
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Code identifies one diagnostic rule. Codes are grouped by pass:
//
//	Xnnn  parse errors (template is not valid SQL at all)
//	Bnnn  binder: unknown/ambiguous/duplicate name resolution
//	Tnnn  types: operand kind mismatches
//	Annn  aggregates: GROUP BY conformance and aggregate placement
//	Jnnn  joins: cartesian products and degenerate ON conditions
//	Pnnn  predicates: contradictions and constant conditions
//	Hnnn  placeholders: sargability and bindability of {p_i} markers
//	Snnn  specification conformance (the Figure 8a error taxonomy)
//	Innn  intervals: static cost-interval analysis verdicts (package
//	      analyzer/intervals) — pruned, flat, or unavailable
type Code string

// The diagnostic code table. DESIGN.md documents each entry.
const (
	CodeParseError Code = "X001"

	CodeUnknownTable    Code = "B001"
	CodeUnknownColumn   Code = "B002"
	CodeAmbiguousColumn Code = "B003"
	CodeDuplicateTable  Code = "B004"
	CodeMissingFrom     Code = "B005"

	CodeComparisonTypeMismatch Code = "T001"
	CodeAggregateArgType       Code = "T002"

	CodeUngroupedColumn    Code = "A001"
	CodeAggregateInWhere   Code = "A002"
	CodeNestedAggregate    Code = "A003"
	CodeHavingWithoutGroup Code = "A004"
	CodeAggregateInGroupBy Code = "A005"

	CodeCartesianJoin   Code = "J001"
	CodeDegenerateJoin  Code = "J002"
	CodeAlwaysFalse     Code = "P001"
	CodeContradiction   Code = "P002"
	CodeConstantPredic  Code = "P003"
	CodeUnsargable      Code = "H001"
	CodeMisplacedMarker Code = "H002"

	CodeSpecTables        Code = "S001"
	CodeSpecJoins         Code = "S002"
	CodeSpecAggregations  Code = "S003"
	CodeSpecPredicates    Code = "S004"
	CodeSpecNestedQuery   Code = "S005"
	CodeSpecGroupBy       Code = "S006"
	CodeSpecComplexScalar Code = "S007"
	CodeSpecOther         Code = "S099"

	CodeIntervalPruned      Code = "I001"
	CodeIntervalFlat        Code = "I002"
	CodeIntervalUnavailable Code = "I003"
)

// Span locates a diagnostic inside the canonical template SQL as a
// [Start, End) byte range. The parser does not retain positions, so spans are
// recovered best-effort by locating the offending sub-expression's rendering
// inside the statement's canonical text; an unlocatable span is {0, 0}.
type Span struct {
	Start int
	End   int
}

// Diagnostic is one finding from a static-analysis pass.
type Diagnostic struct {
	Code     Code
	Severity Severity
	Span     Span
	// Msg describes the defect in DBMS-error style.
	Msg string
	// Fix, when non-empty, is a machine-readable repair hint fed back to the
	// LLM's FixSemantics/FixExecution prompts (the structured-diagnostic
	// repair idea of the self-healing NL2SQL line of work).
	Fix string
}

// String renders the diagnostic as "code severity: msg (fix: ...)".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s %s: %s", d.Code, d.Severity, d.Msg)
	if d.Fix != "" {
		s += " (fix: " + d.Fix + ")"
	}
	return s
}

// Report is the outcome of analyzing one template.
type Report struct {
	Diagnostics []Diagnostic
}

// HasErrors reports whether any diagnostic is Error severity.
func (r Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// SpecErrors returns the Error diagnostics in the specification group
// (S-codes): the defects the LLM judge would report.
func (r Report) SpecErrors() []Diagnostic { return r.filter(Error, 'S') }

// ExecErrors returns the Error diagnostics that would make the DBMS reject
// the template (everything except the S group).
func (r Report) ExecErrors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Error && !strings.HasPrefix(string(d.Code), "S") {
			out = append(out, d)
		}
	}
	return out
}

func (r Report) filter(sev Severity, group byte) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == sev && len(d.Code) > 0 && d.Code[0] == group {
			out = append(out, d)
		}
	}
	return out
}

// Codes returns the sorted, de-duplicated code set — the structured summary
// AttemptTrace records.
func (r Report) Codes() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range r.Diagnostics {
		c := string(d.Code)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Hints renders the error diagnostics as repair-hint lines for Fix* prompts.
func Hints(diags []Diagnostic) []string {
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, d.String())
	}
	return out
}

// ---- conversions from the legacy validation signatures ----
//
// The two pre-analyzer validators speak different tongues:
// engine.DB.ValidateSyntax returns (bool, string) with a DBMS-style message,
// and llm.Oracle.ValidateSemantics returns (bool, []string, error) with
// judge-phrased violations. Both are normalized here into Diagnostics so
// AttemptTrace records structured codes regardless of which tier found the
// defect.

var dbmsErrorPatterns = []struct {
	re   *regexp.Regexp
	code Code
}{
	{regexp.MustCompile(`^syntax error`), CodeParseError},
	{regexp.MustCompile(`unterminated|unexpected character|empty placeholder|invalid (integer|numeric) literal`), CodeParseError},
	{regexp.MustCompile(`relation "[^"]*" does not exist`), CodeUnknownTable},
	{regexp.MustCompile(`missing FROM-clause entry`), CodeUnknownTable},
	{regexp.MustCompile(`column .* does not exist`), CodeUnknownColumn},
	{regexp.MustCompile(`is ambiguous`), CodeAmbiguousColumn},
	{regexp.MustCompile(`specified more than once`), CodeDuplicateTable},
	{regexp.MustCompile(`without a FROM clause`), CodeMissingFrom},
	{regexp.MustCompile(`aggregate functions are not allowed in WHERE`), CodeAggregateInWhere},
	{regexp.MustCompile(`aggregate functions are not allowed in GROUP BY`), CodeAggregateInGroupBy},
	{regexp.MustCompile(`HAVING requires GROUP BY`), CodeHavingWithoutGroup},
}

// FromDBMSError classifies a DBMS error message (engine.DB.ValidateSyntax's
// second return) into a structured diagnostic.
func FromDBMSError(msg string) Diagnostic {
	for _, p := range dbmsErrorPatterns {
		if p.re.MatchString(msg) {
			return Diagnostic{Code: p.code, Severity: Error, Msg: msg}
		}
	}
	return Diagnostic{Code: CodeParseError, Severity: Error, Msg: msg}
}

var violationPatterns = []struct {
	re   *regexp.Regexp
	code Code
}{
	{regexp.MustCompile(`tables accessed`), CodeSpecTables},
	{regexp.MustCompile(`joins`), CodeSpecJoins},
	{regexp.MustCompile(`aggregations`), CodeSpecAggregations},
	{regexp.MustCompile(`predicate`), CodeSpecPredicates},
	{regexp.MustCompile(`nested subquer`), CodeSpecNestedQuery},
	{regexp.MustCompile(`GROUP BY`), CodeSpecGroupBy},
	{regexp.MustCompile(`complex scalar`), CodeSpecComplexScalar},
	{regexp.MustCompile(`not valid SQL`), CodeParseError},
}

// FromViolations classifies judge violation strings
// (llm.Oracle.ValidateSemantics's second return) into diagnostics.
func FromViolations(violations []string) []Diagnostic {
	out := make([]Diagnostic, 0, len(violations))
	for _, v := range violations {
		code := CodeSpecOther
		for _, p := range violationPatterns {
			if p.re.MatchString(v) {
				code = p.code
				break
			}
		}
		out = append(out, Diagnostic{Code: code, Severity: Error, Msg: v})
	}
	return out
}
