package analyzer

import (
	"fmt"

	"sqlbarber/internal/sqltemplate"
)

// SpecPass pre-checks specification conformance (the Figure 8a error
// taxonomy) without an LLM judge: it computes the template's structural
// features exactly as spec.Check does and emits one S-coded diagnostic per
// breached constraint, each with a concrete repair hint. Because it shares
// spec.Violations with the judge's ground truth, the pass is exact — never
// a false positive, never a miss — which is what lets the generator skip
// the ValidateSemantics call entirely.
type SpecPass struct{}

// Name implements Pass.
func (SpecPass) Name() string { return "spec" }

// specFieldCodes maps spec.Violation fields to diagnostic codes.
var specFieldCodes = map[string]Code{
	"tables":         CodeSpecTables,
	"joins":          CodeSpecJoins,
	"aggregations":   CodeSpecAggregations,
	"predicates":     CodeSpecPredicates,
	"nested_query":   CodeSpecNestedQuery,
	"group_by":       CodeSpecGroupBy,
	"complex_scalar": CodeSpecComplexScalar,
}

// specFieldFixes provides repair hints per dimension, parameterized on the
// delta between expectation and reality.
func specFieldFix(field string, want, got int) string {
	switch field {
	case "tables":
		if got < want {
			return fmt.Sprintf("join %d more table(s) along a foreign-key path", want-got)
		}
		return fmt.Sprintf("remove %d table(s) from FROM/JOIN", got-want)
	case "joins":
		if got < want {
			return fmt.Sprintf("add %d JOIN clause(s) using foreign-key edges", want-got)
		}
		return fmt.Sprintf("remove %d JOIN clause(s)", got-want)
	case "aggregations":
		if got < want {
			return fmt.Sprintf("add %d aggregate call(s) (SUM/AVG/MIN/MAX/COUNT) to the select list", want-got)
		}
		return fmt.Sprintf("remove %d aggregate call(s)", got-want)
	case "predicates":
		if got < want {
			return fmt.Sprintf("add %d placeholder predicate(s) of the form col <op> {p_i}", want-got)
		}
		return fmt.Sprintf("remove %d placeholder predicate(s)", got-want)
	case "nested_query":
		if want == 1 {
			return "add an IN/EXISTS/scalar subquery predicate"
		}
		return "inline or remove the subquery"
	case "group_by":
		if want == 1 {
			return "add a GROUP BY clause over a low-cardinality column"
		}
		return "remove the GROUP BY clause"
	case "complex_scalar":
		if want == 1 {
			return "project an arithmetic expression of depth >= 2 or a CASE expression"
		}
		return "simplify the select list to plain columns and aggregates"
	}
	return ""
}

// Run implements Pass.
func (SpecPass) Run(ctx *Context) []Diagnostic {
	if ctx.Spec == nil {
		return nil
	}
	feats := (&sqltemplate.Template{Stmt: ctx.Stmt}).Features()
	var diags []Diagnostic
	for _, v := range ctx.Spec.Violations(feats) {
		code, ok := specFieldCodes[v.Field]
		if !ok {
			code = CodeSpecOther
		}
		diags = append(diags, Diagnostic{
			Code:     code,
			Severity: Error,
			Msg:      v.Msg,
			Fix:      specFieldFix(v.Field, v.Want, v.Got),
		})
	}
	return diags
}
