package analyzer_test

import (
	"strings"
	"testing"

	"sqlbarber/internal/analyzer"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/sqlparser"
)

// codeCase drives one diagnostic through all three payload dimensions: the
// code itself, the span (as the exact fragment of the *canonical* SQL it
// covers — spans are recovered by locating the expression's rendering inside
// stmt.SQL(), so they must be checked against the canonical text, not the
// input), and the machine-readable repair hint fed to the LLM Fix* prompts.
type codeCase struct {
	name string
	sql  string
	spec *spec.Spec
	code analyzer.Code
	sev  analyzer.Severity
	// wantFrag is the exact canonical-SQL substring the span must cover;
	// "" asserts the span is deliberately empty (the pass has no single
	// offending expression to point at).
	wantFrag string
	// wantFix is a required substring of the repair hint; "" asserts the
	// hint is deliberately absent (info-level observations carry none).
	wantFix string
}

func runCodeCases(t *testing.T, cases []codeCase) {
	t.Helper()
	a := analyzer.New(testSchema())
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := a.AnalyzeSQL(tc.sql, tc.spec)
			canon := tc.sql
			if stmt, err := sqlparser.Parse(tc.sql); err == nil {
				canon = stmt.SQL()
			}
			var found *analyzer.Diagnostic
			for i := range rep.Diagnostics {
				if rep.Diagnostics[i].Code == tc.code {
					found = &rep.Diagnostics[i]
					break
				}
			}
			if found == nil {
				t.Fatalf("code %s not produced; got %v", tc.code, rep.Diagnostics)
			}
			if found.Severity != tc.sev {
				t.Errorf("severity = %s, want %s", found.Severity, tc.sev)
			}
			if tc.wantFrag == "" {
				if found.Span != (analyzer.Span{}) {
					t.Errorf("span = %+v, want empty", found.Span)
				}
			} else {
				if found.Span.Start >= found.Span.End || found.Span.End > len(canon) {
					t.Fatalf("span %+v does not locate inside canonical SQL %q", found.Span, canon)
				}
				if got := canon[found.Span.Start:found.Span.End]; got != tc.wantFrag {
					t.Errorf("span covers %q, want %q (canonical %q)", got, tc.wantFrag, canon)
				}
			}
			if tc.wantFix == "" {
				if found.Fix != "" {
					t.Errorf("fix = %q, want none", found.Fix)
				}
			} else if !strings.Contains(found.Fix, tc.wantFix) {
				t.Errorf("fix = %q, want it to mention %q", found.Fix, tc.wantFix)
			}
			if found.Msg == "" {
				t.Errorf("diagnostic %s has no message", tc.code)
			}
		})
	}
}

// TestParseDiagnostics: the X family — unparseable templates yield exactly
// X001 with a rewrite hint and no span (there is no AST to locate in).
func TestParseDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"garbled keywords", "SELEC name FORM users", nil,
			analyzer.CodeParseError, analyzer.Error, "", "well-formed SELECT"},
		{"unterminated string", "SELECT name FROM users WHERE name = 'x", nil,
			analyzer.CodeParseError, analyzer.Error, "", "well-formed SELECT"},
	})
}

// TestBinderDiagnostics: the B family — name resolution. Column-level codes
// carry spans pointing at the offending reference; table-level codes point
// at nothing (tables are not expressions) but still carry targeted hints.
func TestBinderDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"unknown table", "SELECT name FROM userz", nil,
			analyzer.CodeUnknownTable, analyzer.Error, "", "use one of the schema tables: users, orders"},
		{"unknown column suggests nearest", "SELECT u.nam FROM users u", nil,
			analyzer.CodeUnknownColumn, analyzer.Error, "u.nam", "did you mean u.name?"},
		{"ambiguous column", "SELECT id FROM users u JOIN orders o ON o.user_id = u.id", nil,
			analyzer.CodeAmbiguousColumn, analyzer.Error, "id", `qualify "id" with its table alias`},
		{"duplicate table", "SELECT u.id FROM users u JOIN users u ON u.id = u.id", nil,
			analyzer.CodeDuplicateTable, analyzer.Error, "", "distinct alias"},
		{"missing FROM", "SELECT 1", nil,
			analyzer.CodeMissingFrom, analyzer.Error, "", "add a FROM clause"},
	})
}

// TestTypeDiagnostics: the T family — operand kind mismatches, spanned to
// the mismatched comparison or aggregate call.
func TestTypeDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"int column vs string literal", "SELECT name FROM users WHERE age = 'abc'", nil,
			analyzer.CodeComparisonTypeMismatch, analyzer.Error, "age = 'abc'", "value of its own type"},
		{"SUM over string column", "SELECT SUM(name) FROM users", nil,
			analyzer.CodeAggregateArgType, analyzer.Error, "SUM(name)", "COUNT/MIN/MAX for strings"},
	})
}

// TestAggregateDiagnostics: the A family — GROUP BY conformance and
// aggregate placement.
func TestAggregateDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"ungrouped column", "SELECT city, name FROM users GROUP BY city", nil,
			analyzer.CodeUngroupedColumn, analyzer.Warning, "name", "add it to GROUP BY"},
		{"aggregate in WHERE", "SELECT name FROM users WHERE SUM(age) > 10", nil,
			analyzer.CodeAggregateInWhere, analyzer.Error, "SUM(age) > 10", "HAVING clause"},
		{"nested aggregate", "SELECT SUM(AVG(age)) FROM users", nil,
			analyzer.CodeNestedAggregate, analyzer.Error, "SUM(AVG(age))", "subquery"},
		{"HAVING without GROUP BY", "SELECT name FROM users HAVING age > 10", nil,
			analyzer.CodeHavingWithoutGroup, analyzer.Error, "age > 10", "add a GROUP BY clause"},
		{"aggregate in GROUP BY", "SELECT city FROM users GROUP BY COUNT(*)", nil,
			analyzer.CodeAggregateInGroupBy, analyzer.Error, "COUNT(*)", "underlying column"},
	})
}

// TestJoinDiagnostics: the J family — cartesian products and degenerate ON
// conditions, spanned to the ON expression.
func TestJoinDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"self-referential ON", "SELECT u.name FROM users u JOIN orders o ON o.id = o.user_id", nil,
			analyzer.CodeCartesianJoin, analyzer.Warning, "o.id = o.user_id", "column of an earlier table"},
		{"constant ON", "SELECT u.name FROM users u JOIN orders o ON 1 = 1", nil,
			analyzer.CodeDegenerateJoin, analyzer.Warning, "1 = 1", "foreign-key column pair"},
	})
}

// TestPredicateDiagnostics: the P family — contradictions and constant
// conditions. P003 is an info-level observation and deliberately carries no
// repair hint: a constant predicate is legal, just pointless.
func TestPredicateDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"always-false comparison", "SELECT name FROM users WHERE 1 = 2", nil,
			analyzer.CodeAlwaysFalse, analyzer.Warning, "1 = 2", "remove the contradiction"},
		{"empty BETWEEN range", "SELECT name FROM users WHERE age BETWEEN 9 AND 3", nil,
			analyzer.CodeAlwaysFalse, analyzer.Warning, "age BETWEEN 9 AND 3", "swap the BETWEEN bounds"},
		{"range contradiction", "SELECT name FROM users WHERE age > 9 AND age < 3", nil,
			analyzer.CodeContradiction, analyzer.Warning, "", "conflicting predicates"},
		{"constant predicate", "SELECT name FROM users WHERE 1 = 1", nil,
			analyzer.CodeConstantPredic, analyzer.Info, "1 = 1", ""},
	})
}

// TestPlaceholderDiagnostics: the H family — sargability and bindability of
// {p_i} markers. The hints name the placeholder so the Fix* prompt can
// target it.
func TestPlaceholderDiagnostics(t *testing.T) {
	runCodeCases(t, []codeCase{
		{"unsargable arithmetic", "SELECT name FROM users WHERE age + 1 = {p1}", nil,
			analyzer.CodeUnsargable, analyzer.Error, "", "<table>.<column> <op> {p1}"},
		{"marker outside predicate", "SELECT {p1} FROM users", nil,
			analyzer.CodeMisplacedMarker, analyzer.Error, "", "move {p1} into a comparison"},
	})
}

// TestSpecDiagnostics: the S family — Figure 8a specification conformance.
// Every violation's hint states the delta needed (how many more tables,
// joins, aggregates, ...), which is what makes the FixSemantics round cheap.
func TestSpecDiagnostics(t *testing.T) {
	sp := func(s spec.Spec) *spec.Spec { return &s }
	base := "SELECT name FROM users WHERE age > {p1}"
	runCodeCases(t, []codeCase{
		{"table count", base, sp(spec.Spec{NumTables: spec.Int(2)}),
			analyzer.CodeSpecTables, analyzer.Error, "", "join 1 more table(s)"},
		{"join count", base, sp(spec.Spec{NumJoins: spec.Int(1)}),
			analyzer.CodeSpecJoins, analyzer.Error, "", "add 1 JOIN clause(s)"},
		{"aggregation count", base, sp(spec.Spec{NumAggregations: spec.Int(1)}),
			analyzer.CodeSpecAggregations, analyzer.Error, "", "aggregate"},
		{"predicate count", base, sp(spec.Spec{NumPredicates: spec.Int(2)}),
			analyzer.CodeSpecPredicates, analyzer.Error, "", "predicate"},
		{"nested query", base, sp(spec.Spec{NestedQuery: spec.Bool(true)}),
			analyzer.CodeSpecNestedQuery, analyzer.Error, "", "subquer"},
		{"group by", base, sp(spec.Spec{GroupBy: spec.Bool(true)}),
			analyzer.CodeSpecGroupBy, analyzer.Error, "", "GROUP BY"},
		{"complex scalar", base, sp(spec.Spec{ComplexScalar: spec.Bool(true)}),
			analyzer.CodeSpecComplexScalar, analyzer.Error, "", "arithmetic expression"},
	})
}
