package analyzer

import (
	"fmt"
	"strings"

	"sqlbarber/internal/sqlparser"
)

// JoinPass detects cartesian products and degenerate join conditions: a JOIN
// whose ON clause never references the joined table (or references no column
// at all) multiplies cardinalities and produces the runaway costs the paper's
// profiling stage then wastes budget measuring. The engine accepts such
// joins, so these are warnings, not errors.
type JoinPass struct{}

// Name implements Pass.
func (JoinPass) Name() string { return "joins" }

// Run implements Pass.
func (JoinPass) Run(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	ctx.EachSelect(func(s *sqlparser.SelectStmt, sc *scope) {
		// Reference names introduced so far, in join order: FROM first.
		introduced := map[string]bool{}
		if s.From != nil {
			introduced[strings.ToLower(s.From.Name())] = true
		}
		for _, j := range s.Joins {
			joined := strings.ToLower(j.Table.Name())
			refsJoined, refsPrior, refsAny := joinOnRefs(sc, j.On, joined, introduced)
			switch {
			case !refsAny:
				diags = append(diags, Diagnostic{
					Code: CodeDegenerateJoin, Severity: Warning, Span: ctx.SpanOf(j.On),
					Msg: fmt.Sprintf("join condition on %q references no columns: %s", j.Table.Name(), condSQL(j.On)),
					Fix: fmt.Sprintf("join %q on a foreign-key column pair", j.Table.Name()),
				})
			case !refsJoined || !refsPrior:
				diags = append(diags, Diagnostic{
					Code: CodeCartesianJoin, Severity: Warning, Span: ctx.SpanOf(j.On),
					Msg: fmt.Sprintf("join of %q is cartesian: ON clause does not connect it to the preceding tables", j.Table.Name()),
					Fix: fmt.Sprintf("add an equality between a column of %q and a column of an earlier table", j.Table.Name()),
				})
			}
			introduced[joined] = true
		}
	})
	return diags
}

// joinOnRefs classifies which side(s) of the join the ON expression touches.
func joinOnRefs(sc *scope, on sqlparser.Expr, joined string, prior map[string]bool) (refsJoined, refsPrior, refsAny bool) {
	walkLevel(on, func(e sqlparser.Expr) {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok {
			return
		}
		refsAny = true
		if cr.Table != "" {
			q := strings.ToLower(cr.Table)
			if q == joined {
				refsJoined = true
			}
			if prior[q] {
				refsPrior = true
			}
			return
		}
		// Unqualified: attribute it to whichever table owns the column.
		inst, _, st := sc.resolve(cr)
		if st != resolved {
			// Unresolvable reference — the binder pass reports it; treat as
			// touching both sides so no bogus cartesian warning piles on.
			refsJoined, refsPrior = true, true
			return
		}
		q := strings.ToLower(inst.refName)
		if q == joined {
			refsJoined = true
		}
		if prior[q] {
			refsPrior = true
		}
	})
	return
}

func condSQL(e sqlparser.Expr) string {
	if e == nil {
		return "<nil>"
	}
	return e.SQL()
}
