package analyzer_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sqlbarber/internal/analyzer"
	"sqlbarber/internal/catalog"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/sqlparser"
)

// testSchema is a two-table shop schema with an FK edge, enough to exercise
// every pass.
func testSchema() *catalog.Schema {
	return &catalog.Schema{
		Name: "shop",
		Tables: []*catalog.Table{
			{
				Name: "users", PrimaryKey: "id", RowCount: 100,
				Columns: []catalog.Column{
					{Name: "id", Type: catalog.TypeInt},
					{Name: "name", Type: catalog.TypeString},
					{Name: "age", Type: catalog.TypeInt},
					{Name: "city", Type: catalog.TypeString},
				},
			},
			{
				Name: "orders", PrimaryKey: "id", RowCount: 1000,
				ForeignKeys: []catalog.ForeignKey{
					{Column: "user_id", RefTable: "users", RefColumn: "id"},
				},
				Columns: []catalog.Column{
					{Name: "id", Type: catalog.TypeInt},
					{Name: "user_id", Type: catalog.TypeInt},
					{Name: "amount", Type: catalog.TypeFloat},
					{Name: "status", Type: catalog.TypeString},
				},
			},
		},
	}
}

func hasCode(rep analyzer.Report, code analyzer.Code) bool {
	for _, d := range rep.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestEachCodeFires runs one minimal bad template per diagnostic code and
// asserts exactly that code (at the expected severity) is produced.
func TestEachCodeFires(t *testing.T) {
	sp := func(s spec.Spec) *spec.Spec { return &s }
	cases := []struct {
		name string
		sql  string
		spec *spec.Spec
		code analyzer.Code
		sev  analyzer.Severity
	}{
		{"parse error", "SELEC name FORM users", nil, analyzer.CodeParseError, analyzer.Error},
		{"unknown table", "SELECT name FROM userz", nil, analyzer.CodeUnknownTable, analyzer.Error},
		{"unknown qualifier", "SELECT x.name FROM users u", nil, analyzer.CodeUnknownTable, analyzer.Error},
		{"unknown column", "SELECT u.nam FROM users u", nil, analyzer.CodeUnknownColumn, analyzer.Error},
		{"ambiguous column", "SELECT id FROM users u JOIN orders o ON o.user_id = u.id", nil, analyzer.CodeAmbiguousColumn, analyzer.Error},
		{"duplicate table", "SELECT u.id FROM users u JOIN users u ON u.id = u.id", nil, analyzer.CodeDuplicateTable, analyzer.Error},
		{"missing FROM", "SELECT 1", nil, analyzer.CodeMissingFrom, analyzer.Error},
		{"comparison type mismatch", "SELECT name FROM users WHERE age = 'abc'", nil, analyzer.CodeComparisonTypeMismatch, analyzer.Error},
		{"between type mismatch", "SELECT name FROM users WHERE name BETWEEN 1 AND 5", nil, analyzer.CodeComparisonTypeMismatch, analyzer.Error},
		{"aggregate arg type", "SELECT SUM(name) FROM users", nil, analyzer.CodeAggregateArgType, analyzer.Error},
		{"ungrouped column", "SELECT city, name FROM users GROUP BY city", nil, analyzer.CodeUngroupedColumn, analyzer.Warning},
		{"aggregate in WHERE", "SELECT name FROM users WHERE SUM(age) > 10", nil, analyzer.CodeAggregateInWhere, analyzer.Error},
		{"nested aggregate", "SELECT SUM(AVG(age)) FROM users", nil, analyzer.CodeNestedAggregate, analyzer.Error},
		{"HAVING without group", "SELECT name FROM users HAVING age > 10", nil, analyzer.CodeHavingWithoutGroup, analyzer.Error},
		{"aggregate in GROUP BY", "SELECT city FROM users GROUP BY COUNT(*)", nil, analyzer.CodeAggregateInGroupBy, analyzer.Error},
		{"cartesian join", "SELECT u.name FROM users u JOIN orders o ON o.id = o.user_id", nil, analyzer.CodeCartesianJoin, analyzer.Warning},
		{"degenerate join", "SELECT u.name FROM users u JOIN orders o ON 1 = 1", nil, analyzer.CodeDegenerateJoin, analyzer.Warning},
		{"always false", "SELECT name FROM users WHERE 1 = 2", nil, analyzer.CodeAlwaysFalse, analyzer.Warning},
		{"empty BETWEEN", "SELECT name FROM users WHERE age BETWEEN 9 AND 3", nil, analyzer.CodeAlwaysFalse, analyzer.Warning},
		{"contradiction", "SELECT name FROM users WHERE age > 9 AND age < 3", nil, analyzer.CodeContradiction, analyzer.Warning},
		{"constant predicate", "SELECT name FROM users WHERE 1 = 1", nil, analyzer.CodeConstantPredic, analyzer.Info},
		{"unsargable placeholder", "SELECT name FROM users WHERE age + 1 = {p1}", nil, analyzer.CodeUnsargable, analyzer.Error},
		{"misplaced placeholder", "SELECT {p1} FROM users", nil, analyzer.CodeMisplacedMarker, analyzer.Error},
		{"spec tables", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{NumTables: spec.Int(2)}), analyzer.CodeSpecTables, analyzer.Error},
		{"spec joins", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{NumJoins: spec.Int(1)}), analyzer.CodeSpecJoins, analyzer.Error},
		{"spec aggregations", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{NumAggregations: spec.Int(1)}), analyzer.CodeSpecAggregations, analyzer.Error},
		{"spec predicates", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{NumPredicates: spec.Int(2)}), analyzer.CodeSpecPredicates, analyzer.Error},
		{"spec nested query", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{NestedQuery: spec.Bool(true)}), analyzer.CodeSpecNestedQuery, analyzer.Error},
		{"spec group by", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{GroupBy: spec.Bool(true)}), analyzer.CodeSpecGroupBy, analyzer.Error},
		{"spec complex scalar", "SELECT name FROM users WHERE age > {p1}",
			sp(spec.Spec{ComplexScalar: spec.Bool(true)}), analyzer.CodeSpecComplexScalar, analyzer.Error},
	}
	a := analyzer.New(testSchema())
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := a.AnalyzeSQL(tc.sql, tc.spec)
			if !hasCode(rep, tc.code) {
				t.Fatalf("want code %s, got %v", tc.code, rep.Diagnostics)
			}
			for _, d := range rep.Diagnostics {
				if d.Code == tc.code && d.Severity != tc.sev {
					t.Fatalf("code %s has severity %s, want %s", tc.code, d.Severity, tc.sev)
				}
			}
		})
	}
}

// TestCleanTemplatesStaySilent asserts well-formed templates produce no Error
// diagnostics (warnings/info allowed only where noted; these produce none).
func TestCleanTemplatesStaySilent(t *testing.T) {
	clean := []string{
		"SELECT name FROM users WHERE age > {p1}",
		// Note HAVING COUNT(*) > {p1} would be flagged H001: BindPlaceholders
		// only binds placeholders compared against columns, so the analyzer is
		// right to reject aggregate-compared placeholders.
		"SELECT u.city, COUNT(*) FROM users u WHERE u.age > {p1} GROUP BY u.city",
		"SELECT u.name, o.amount FROM users u JOIN orders o ON o.user_id = u.id WHERE o.amount BETWEEN {p1} AND {p2}",
		"SELECT name FROM users WHERE id IN (SELECT user_id FROM orders WHERE amount > {p1})",
		"SELECT SUM(o.amount * 2 + 1) FROM orders o WHERE o.status = {p1}",
	}
	a := analyzer.New(testSchema())
	for _, sql := range clean {
		rep := a.AnalyzeSQL(sql, nil)
		if len(rep.Diagnostics) != 0 {
			t.Errorf("%s: unexpected diagnostics %v", sql, rep.Diagnostics)
		}
	}
}

// TestSpecPassMatchesJudgeGroundTruth checks the spec pass agrees exactly
// with spec.Check for a satisfied spec (no false positives).
func TestSpecPassMatchesJudgeGroundTruth(t *testing.T) {
	sql := "SELECT u.city, COUNT(*) FROM users u JOIN orders o ON o.user_id = u.id " +
		"WHERE o.amount > {p1} AND u.age < {p2} GROUP BY u.city"
	s := spec.Spec{
		NumTables:     spec.Int(2),
		NumJoins:      spec.Int(1),
		NumPredicates: spec.Int(2),
		GroupBy:       spec.Bool(true),
	}
	rep := analyzer.New(testSchema()).AnalyzeSQL(sql, &s)
	if errs := rep.SpecErrors(); len(errs) != 0 {
		t.Fatalf("satisfied spec produced spec errors: %v", errs)
	}
}

// TestCorpusSilent runs the analyzer over templates synthesized by the
// perfect oracle for both seed databases and asserts no Error diagnostics:
// the static tier never blocks a template the judge and the DBMS would both
// accept.
func TestCorpusSilent(t *testing.T) {
	dbs := map[string]*engine.DB{
		"tpch": engine.OpenTPCH(7, 0.01),
		"imdb": engine.OpenIMDB(7, 0.01),
	}
	specs := []spec.Spec{
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(1)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(2), NumPredicates: spec.Int(2), GroupBy: spec.Bool(true)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(1), NestedQuery: spec.Bool(true)},
		{NumJoins: spec.Int(1), NumAggregations: spec.Int(1), GroupBy: spec.Bool(true)},
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), ComplexScalar: spec.Bool(true)},
	}
	for name, db := range dbs {
		oracle := llm.NewSim(llm.Perfect(int64(len(name))))
		a := analyzer.New(db.Schema())
		for i, s := range specs {
			numJoins := 0
			if s.NumJoins != nil {
				numJoins = *s.NumJoins
			}
			paths := db.Schema().JoinPaths(numJoins, 8)
			if len(paths) == 0 {
				continue
			}
			for _, p := range paths {
				sql, err := oracle.GenerateTemplate(context.Background(), llm.GenerateRequest{
					Schema: db.Schema(), JoinPath: p, Spec: s,
				})
				if err != nil {
					t.Fatalf("%s spec %d: %v", name, i, err)
				}
				rep := a.AnalyzeSQL(sql, &s)
				var errs []analyzer.Diagnostic
				for _, d := range rep.Diagnostics {
					if d.Severity == analyzer.Error {
						errs = append(errs, d)
					}
				}
				if len(errs) > 0 {
					t.Errorf("%s spec %d template %q: %v", name, i, sql, errs)
				}
				// Parity: if the DBMS accepts it, the analyzer must not have
				// claimed an executability error (checked above); if the DBMS
				// rejects it, this corpus is broken — fail loudly.
				if ok, msg := db.ValidateSyntax(sql); !ok {
					t.Fatalf("%s spec %d: perfect-oracle template rejected by DBMS: %s", name, i, msg)
				}
			}
		}
	}
}

// TestAnalyzerNeverFalselyBlocks is the contract that lets the generator skip
// ValidateSyntax: whenever the analyzer reports an executability Error, the
// real DBMS check must also reject the template.
func TestAnalyzerNeverFalselyBlocks(t *testing.T) {
	db := engine.OpenTPCH(11, 0.01)
	a := analyzer.New(db.Schema())
	bad := []string{
		"SELECT l_extendedprice FROM lineitems",
		"SELECT l.l_price FROM lineitem l",
		"SELECT o_totalprice FROM orders WHERE SUM(o_totalprice) > 5",
		"SELECT o_totalprice FROM orders HAVING o_totalprice > 5",
	}
	for _, sql := range bad {
		rep := a.AnalyzeSQL(sql, nil)
		if len(rep.ExecErrors()) == 0 {
			continue // analyzer is allowed to miss; it must not falsely block
		}
		if ok, _ := db.ValidateSyntax(sql); ok {
			t.Errorf("analyzer blocks %q but DBMS accepts it: %v", sql, rep.ExecErrors())
		}
	}
}

// TestFromDBMSError checks legacy DBMS message normalization.
func TestFromDBMSError(t *testing.T) {
	cases := []struct {
		msg  string
		code analyzer.Code
	}{
		{"syntax error at or near position 7", analyzer.CodeParseError},
		{`relation "userz" does not exist`, analyzer.CodeUnknownTable},
		{`column "u.nam" does not exist`, analyzer.CodeUnknownColumn},
		{`column reference "id" is ambiguous`, analyzer.CodeAmbiguousColumn},
		{"some novel failure", analyzer.CodeParseError},
	}
	for _, tc := range cases {
		if got := analyzer.FromDBMSError(tc.msg).Code; got != tc.code {
			t.Errorf("FromDBMSError(%q) = %s, want %s", tc.msg, got, tc.code)
		}
	}
}

// TestFromViolations checks judge violation normalization.
func TestFromViolations(t *testing.T) {
	diags := analyzer.FromViolations([]string{
		"expected 2 joins, template has 1",
		"expected 3 tables accessed, template has 2",
		"template must include a nested subquery",
		"something unrecognizable",
	})
	want := []analyzer.Code{
		analyzer.CodeSpecJoins,
		analyzer.CodeSpecTables,
		analyzer.CodeSpecNestedQuery,
		analyzer.CodeSpecOther,
	}
	for i, d := range diags {
		if d.Code != want[i] {
			t.Errorf("violation %d: code %s, want %s", i, d.Code, want[i])
		}
	}
}

// TestDiagnosticString checks rendering used in repair hints.
func TestDiagnosticString(t *testing.T) {
	d := analyzer.Diagnostic{
		Code: analyzer.CodeUnknownColumn, Severity: analyzer.Error,
		Msg: `column "u.nam" does not exist`, Fix: "did you mean u.name?",
	}
	s := d.String()
	for _, part := range []string{"B002", "error", "u.nam", "fix: did you mean"} {
		if !strings.Contains(s, part) {
			t.Errorf("diagnostic string %q missing %q", s, part)
		}
	}
}

// TestSpanRecovery checks that spans locate the offending fragment in the
// canonical SQL.
func TestSpanRecovery(t *testing.T) {
	sql := "SELECT name FROM users WHERE 1 = 2"
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzer.New(testSchema()).Analyze(stmt, nil)
	for _, d := range rep.Diagnostics {
		if d.Code != analyzer.CodeAlwaysFalse {
			continue
		}
		canon := stmt.SQL()
		if d.Span.End <= d.Span.Start || d.Span.End > len(canon) {
			t.Fatalf("bad span %+v for %q", d.Span, canon)
		}
		frag := canon[d.Span.Start:d.Span.End]
		if !strings.Contains(frag, "1") || !strings.Contains(frag, "2") {
			t.Fatalf("span fragment %q does not cover the predicate", frag)
		}
		return
	}
	t.Fatal("always-false diagnostic not produced")
}

// TestCustomPassPipeline checks NewWithPasses restricts the pipeline.
func TestCustomPassPipeline(t *testing.T) {
	a := analyzer.NewWithPasses(testSchema(), analyzer.BinderPass{})
	rep := a.AnalyzeSQL("SELECT nam FROM users WHERE 1 = 2", nil)
	if !hasCode(rep, analyzer.CodeUnknownColumn) {
		t.Fatal("binder pass should fire")
	}
	if hasCode(rep, analyzer.CodeAlwaysFalse) {
		t.Fatal("predicate pass must not run when excluded")
	}
}

// TestReportCodes checks deterministic, deduplicated code summaries.
func TestReportCodes(t *testing.T) {
	rep := analyzer.New(testSchema()).AnalyzeSQL(
		"SELECT nam, nam FROM users WHERE 1 = 2", nil)
	codes := rep.Codes()
	seen := map[string]bool{}
	for i, c := range codes {
		if seen[c] {
			t.Fatalf("duplicate code %s in %v", c, codes)
		}
		seen[c] = true
		if i > 0 && codes[i-1] > c {
			t.Fatalf("codes not sorted: %v", codes)
		}
	}
	if !seen[string(analyzer.CodeUnknownColumn)] || !seen[string(analyzer.CodeAlwaysFalse)] {
		t.Fatalf("expected B002 and P001 in %v", codes)
	}
}

func ExampleDiagnostic_String() {
	d := analyzer.Diagnostic{
		Code:     analyzer.CodeUnknownTable,
		Severity: analyzer.Error,
		Msg:      `relation "userz" does not exist`,
		Fix:      "use one of the schema tables: users, orders",
	}
	fmt.Println(d)
	// Output: B001 error: relation "userz" does not exist (fix: use one of the schema tables: users, orders)
}
