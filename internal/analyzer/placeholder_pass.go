package analyzer

import (
	"fmt"

	"sqlbarber/internal/sqlparser"
)

// PlaceholderPass checks {p_i} sargability: every placeholder must appear in
// a monotone comparison (=, <, <=, >, >=, BETWEEN bound, IN-list member)
// against a resolvable column — exactly the contexts
// sqltemplate.BindPlaceholders can bind, and only in the clauses it scans
// (SELECT list, WHERE, HAVING). An unbindable placeholder slips through the
// DBMS check (ValidateSyntax substitutes neutral probes) only to kill the
// template later in profiling, wasting its whole Algorithm 1 budget;
// catching it statically lets the loop repair it for free.
type PlaceholderPass struct{}

// Name implements Pass.
func (PlaceholderPass) Name() string { return "placeholders" }

// Run implements Pass.
func (PlaceholderPass) Run(ctx *Context) []Diagnostic {
	bound := map[string]bool{}       // names BindPlaceholders would bind
	inPredicate := map[string]bool{} // names appearing in some predicate context
	var order []string
	seen := map[string]bool{}

	ctx.EachSelect(func(s *sqlparser.SelectStmt, sc *scope) {
		// Record every placeholder occurrence (template-wide name registry).
		for _, ce := range topExprs(s) {
			walkLevel(ce.expr, func(e sqlparser.Expr) {
				if ph, ok := e.(*sqlparser.Placeholder); ok && !seen[ph.Name] {
					seen[ph.Name] = true
					order = append(order, ph.Name)
				}
			})
		}
		// BindPlaceholders resolves the compared column against this level's
		// tables only (no outer-scope chaining), so mirror that here.
		local := &scope{stmt: s, tables: sc.tables, aliases: sc.aliases}
		resolves := func(e sqlparser.Expr) bool {
			cr, ok := e.(*sqlparser.ColumnRef)
			if !ok {
				return false
			}
			_, col, st := local.resolve(cr)
			return st == resolved && col != nil
		}
		// Binding contexts: the clauses BindPlaceholders scans.
		var bindingExprs []sqlparser.Expr
		for _, it := range s.Items {
			if it.Expr != nil {
				bindingExprs = append(bindingExprs, it.Expr)
			}
		}
		if s.Where != nil {
			bindingExprs = append(bindingExprs, s.Where)
		}
		if s.Having != nil {
			bindingExprs = append(bindingExprs, s.Having)
		}
		for _, be := range bindingExprs {
			walkLevel(be, func(e sqlparser.Expr) {
				switch x := e.(type) {
				case *sqlparser.BinaryExpr:
					if !x.Op.IsComparison() {
						return
					}
					if ph, ok := x.R.(*sqlparser.Placeholder); ok {
						inPredicate[ph.Name] = true
						if resolves(x.L) {
							bound[ph.Name] = true
						}
					}
					if ph, ok := x.L.(*sqlparser.Placeholder); ok {
						inPredicate[ph.Name] = true
						if resolves(x.R) {
							bound[ph.Name] = true
						}
					}
				case *sqlparser.BetweenExpr:
					for _, b := range []sqlparser.Expr{x.Lo, x.Hi} {
						if ph, ok := b.(*sqlparser.Placeholder); ok {
							inPredicate[ph.Name] = true
							if resolves(x.X) {
								bound[ph.Name] = true
							}
						}
					}
				case *sqlparser.InExpr:
					for _, it := range x.List {
						if ph, ok := it.(*sqlparser.Placeholder); ok {
							inPredicate[ph.Name] = true
							if resolves(x.X) {
								bound[ph.Name] = true
							}
						}
					}
				}
			})
		}
	})

	var diags []Diagnostic
	for _, name := range order {
		if bound[name] {
			continue
		}
		if inPredicate[name] {
			diags = append(diags, Diagnostic{
				Code: CodeUnsargable, Severity: Error,
				Msg: fmt.Sprintf("placeholder {%s} is not compared against a resolvable column; profiling cannot assign it a value domain", name),
				Fix: fmt.Sprintf("write the predicate as <table>.<column> <op> {%s}", name),
			})
		} else {
			diags = append(diags, Diagnostic{
				Code: CodeMisplacedMarker, Severity: Error,
				Msg: fmt.Sprintf("placeholder {%s} appears outside a WHERE/HAVING comparison predicate", name),
				Fix: fmt.Sprintf("move {%s} into a comparison against a column in WHERE or HAVING", name),
			})
		}
	}
	return diags
}
