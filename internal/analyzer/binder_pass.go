package analyzer

import (
	"fmt"
	"strings"

	"sqlbarber/internal/sqlparser"
)

// BinderPass mirrors the planner's name resolution (plan.Bind) without
// touching the engine: unknown relations, unknown and ambiguous columns,
// duplicate table names, and missing FROM clauses. Every defect it reports
// would make engine.DB.ValidateSyntax fail, so the generator can skip that
// round-trip entirely.
type BinderPass struct{}

// Name implements Pass.
func (BinderPass) Name() string { return "binder" }

// Run implements Pass.
func (BinderPass) Run(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	ctx.EachSelect(func(s *sqlparser.SelectStmt, sc *scope) {
		if s.From == nil {
			diags = append(diags, Diagnostic{
				Code: CodeMissingFrom, Severity: Error,
				Msg: "queries without a FROM clause are not supported",
				Fix: "add a FROM clause naming a base table",
			})
			return
		}
		// Unknown relations and duplicate reference names.
		seen := map[string]bool{}
		checkRef := func(ref sqlparser.TableRef) {
			name := strings.ToLower(ref.Name())
			if seen[name] {
				diags = append(diags, Diagnostic{
					Code: CodeDuplicateTable, Severity: Error,
					Msg: fmt.Sprintf("table name %q specified more than once", ref.Name()),
					Fix: fmt.Sprintf("give the second occurrence of %q a distinct alias", ref.Table),
				})
			}
			seen[name] = true
			if ctx.Schema.Table(ref.Table) == nil {
				diags = append(diags, Diagnostic{
					Code: CodeUnknownTable, Severity: Error,
					Msg: fmt.Sprintf("relation %q does not exist", ref.Table),
					Fix: fmt.Sprintf("use one of the schema tables: %s", strings.Join(ctx.Schema.TableNames(), ", ")),
				})
			}
		}
		checkRef(*s.From)
		for _, j := range s.Joins {
			checkRef(j.Table)
		}
		// Column resolution over this level's own expressions.
		for _, ce := range topExprs(s) {
			clause := ce.clause
			walkLevel(ce.expr, func(e sqlparser.Expr) {
				cr, ok := e.(*sqlparser.ColumnRef)
				if !ok {
					return
				}
				_, _, st := sc.resolve(cr)
				switch st {
				case unknownQualifier:
					diags = append(diags, Diagnostic{
						Code: CodeUnknownTable, Severity: Error, Span: ctx.SpanOf(cr),
						Msg: fmt.Sprintf("missing FROM-clause entry for table %q (in %s)", cr.Table, clause),
						Fix: fmt.Sprintf("qualify %q with a table that appears in FROM/JOIN", cr.Name),
					})
				case unknownColumn:
					diags = append(diags, Diagnostic{
						Code: CodeUnknownColumn, Severity: Error, Span: ctx.SpanOf(cr),
						Msg: fmt.Sprintf("column %q does not exist (in %s)", cr.SQL(), clause),
						Fix: suggestColumn(ctx, sc, cr),
					})
				case ambiguous:
					diags = append(diags, Diagnostic{
						Code: CodeAmbiguousColumn, Severity: Error, Span: ctx.SpanOf(cr),
						Msg: fmt.Sprintf("column reference %q is ambiguous (in %s)", cr.Name, clause),
						Fix: fmt.Sprintf("qualify %q with its table alias", cr.Name),
					})
				}
			})
		}
	})
	return diags
}

// suggestColumn builds a repair hint listing near-miss column names from the
// tables in scope (longest-common-prefix heuristic, good enough to steer an
// LLM repair prompt).
func suggestColumn(ctx *Context, sc *scope, cr *sqlparser.ColumnRef) string {
	want := strings.ToLower(cr.Name)
	best, bestScore := "", 0
	for s := sc; s != nil; s = s.parent {
		for _, inst := range s.tables {
			if inst.table == nil {
				continue
			}
			if cr.Table != "" && !strings.EqualFold(cr.Table, inst.refName) {
				continue
			}
			for _, col := range inst.table.Columns {
				score := commonPrefixLen(want, strings.ToLower(col.Name))
				if score > bestScore {
					bestScore = score
					best = inst.refName + "." + col.Name
				}
			}
		}
	}
	if best != "" && bestScore >= 3 {
		return fmt.Sprintf("did you mean %s?", best)
	}
	return "replace it with an existing column of a table in scope"
}

func commonPrefixLen(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
