// Package analyzer is SQLBarber's catalog-aware static-analysis tier: a
// pluggable pass framework over sqlparser ASTs and the catalog schema that
// catches most template defects *before* the Algorithm 1 loop spends an
// LLM-judge call or a DBMS round-trip on them. SynQL-style rule checking
// (binder, types, aggregates, joins, predicates, placeholder sargability,
// spec conformance) runs in microseconds and produces structured
// Diagnostics whose Fix hints feed the LLM's repair prompts directly.
package analyzer

import (
	"sort"
	"strings"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/sqlparser"
)

// Pass is one static-analysis rule set. Passes are stateless; all
// per-template state lives in the Context.
type Pass interface {
	// Name identifies the pass in reports and benchmarks.
	Name() string
	// Run analyzes the template and returns its findings.
	Run(ctx *Context) []Diagnostic
}

// Context carries one template analysis: the schema, the parsed statement,
// the optional specification, and the pre-built name-resolution scopes that
// every pass shares.
type Context struct {
	Schema *catalog.Schema
	Stmt   *sqlparser.SelectStmt
	// Spec, when non-nil, enables the specification-conformance pass.
	Spec *spec.Spec
	// SQL is the canonical rendering of Stmt, used to recover spans.
	SQL string

	scopes map[*sqlparser.SelectStmt]*scope
}

// scope is the name-resolution environment of one SELECT level, chained to
// the enclosing query for correlated subqueries. Unlike plan.Bind it is
// tolerant: unknown relations yield a nil Table rather than aborting, so
// later passes can keep analyzing the rest of the statement.
type scope struct {
	stmt   *sqlparser.SelectStmt
	parent *scope
	tables []tableInstance
	// aliases maps lower-cased select-item aliases to their expressions
	// (GROUP BY/ORDER BY may reference output names).
	aliases map[string]sqlparser.Expr
}

type tableInstance struct {
	refName string
	table   *catalog.Table // nil when the relation does not exist
}

// resolveStatus classifies a column-reference lookup.
type resolveStatus uint8

const (
	resolved resolveStatus = iota
	resolvedAlias
	unknownQualifier // qualified ref whose qualifier names no table in scope
	unknownColumn
	ambiguous
	unresolvable // scope contains unknown relations; resolution is moot
)

// resolve looks a column reference up through the scope chain, mirroring
// plan/binder.go's rules (including the output-alias escape hatch).
func (sc *scope) resolve(cr *sqlparser.ColumnRef) (tableInstance, *catalog.Column, resolveStatus) {
	if cr.Table == "" {
		if alias, ok := sc.aliases[strings.ToLower(cr.Name)]; ok {
			if _, isCol := alias.(*sqlparser.ColumnRef); !isCol {
				return tableInstance{}, nil, resolvedAlias
			}
		}
	}
	anyUnknown := false
	for s := sc; s != nil; s = s.parent {
		var found tableInstance
		var foundCol *catalog.Column
		matches := 0
		qualifierSeen := false
		for _, inst := range s.tables {
			if cr.Table != "" && !strings.EqualFold(cr.Table, inst.refName) {
				continue
			}
			if cr.Table != "" {
				qualifierSeen = true
			}
			if inst.table == nil {
				anyUnknown = true
				continue
			}
			col := inst.table.Column(cr.Name)
			if col == nil {
				continue
			}
			found, foundCol = inst, col
			matches++
		}
		if matches > 1 {
			return tableInstance{}, nil, ambiguous
		}
		if matches == 1 {
			return found, foundCol, resolved
		}
		if cr.Table != "" && qualifierSeen {
			if anyUnknown {
				return tableInstance{}, nil, unresolvable
			}
			return tableInstance{}, nil, unknownColumn
		}
	}
	if anyUnknown {
		// An unknown relation may well own this column; stay silent — the
		// binder pass already reported the missing relation.
		return tableInstance{}, nil, unresolvable
	}
	if cr.Table != "" {
		return tableInstance{}, nil, unknownQualifier
	}
	return tableInstance{}, nil, unknownColumn
}

// Analyzer runs a pass pipeline over templates for one schema.
type Analyzer struct {
	schema *catalog.Schema
	passes []Pass
}

// DefaultPasses returns the full built-in pass pipeline in execution order.
func DefaultPasses() []Pass {
	return []Pass{
		BinderPass{},
		TypePass{},
		AggregatePass{},
		JoinPass{},
		PredicatePass{},
		PlaceholderPass{},
		SpecPass{},
	}
}

// New creates an Analyzer with the default pass pipeline.
func New(schema *catalog.Schema) *Analyzer {
	return &Analyzer{schema: schema, passes: DefaultPasses()}
}

// NewWithPasses creates an Analyzer running only the given passes.
func NewWithPasses(schema *catalog.Schema, passes ...Pass) *Analyzer {
	return &Analyzer{schema: schema, passes: passes}
}

// Analyze runs all passes over a parsed statement. sp may be nil to skip
// specification conformance.
func (a *Analyzer) Analyze(stmt *sqlparser.SelectStmt, sp *spec.Spec) Report {
	ctx := &Context{Schema: a.schema, Stmt: stmt, Spec: sp, SQL: stmt.SQL()}
	ctx.buildScopes()
	var rep Report
	for _, p := range a.passes {
		rep.Diagnostics = append(rep.Diagnostics, p.Run(ctx)...)
	}
	rep.Diagnostics = normalizeDiagnostics(rep.Diagnostics)
	return rep
}

// normalizeDiagnostics makes reports order-stable and non-repetitive: sort
// deterministically by (code, span), then drop findings that duplicate an
// earlier one's code and span — several passes can flag the same expression
// for the same reason, and repeated lines only dilute the repair prompt.
// Within a duplicate group the first finding in pass order survives, which
// the stable sort preserves.
func normalizeDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Code != diags[j].Code {
			return diags[i].Code < diags[j].Code
		}
		if diags[i].Span.Start != diags[j].Span.Start {
			return diags[i].Span.Start < diags[j].Span.Start
		}
		return diags[i].Span.End < diags[j].Span.End
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Code == diags[i-1].Code && d.Span == diags[i-1].Span {
			continue
		}
		out = append(out, d)
	}
	return out
}

// AnalyzeSQL parses the template text and analyzes it. A parse failure
// yields a single X001 diagnostic.
func (a *Analyzer) AnalyzeSQL(sql string, sp *spec.Spec) Report {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return Report{Diagnostics: []Diagnostic{{
			Code:     CodeParseError,
			Severity: Error,
			Msg:      err.Error(),
			Fix:      "rewrite the statement as a single well-formed SELECT",
		}}}
	}
	return a.Analyze(stmt, sp)
}

// buildScopes constructs the scope chain for the outer statement and every
// nested subquery.
func (ctx *Context) buildScopes() {
	ctx.scopes = map[*sqlparser.SelectStmt]*scope{}
	var build func(s *sqlparser.SelectStmt, parent *scope)
	build = func(s *sqlparser.SelectStmt, parent *scope) {
		sc := &scope{stmt: s, parent: parent, aliases: map[string]sqlparser.Expr{}}
		add := func(ref sqlparser.TableRef) {
			sc.tables = append(sc.tables, tableInstance{
				refName: ref.Name(),
				table:   ctx.Schema.Table(ref.Table),
			})
		}
		if s.From != nil {
			add(*s.From)
		}
		for _, j := range s.Joins {
			add(j.Table)
		}
		for _, it := range s.Items {
			if it.Alias != "" && it.Expr != nil {
				sc.aliases[strings.ToLower(it.Alias)] = it.Expr
			}
		}
		ctx.scopes[s] = sc
		for _, sub := range directSubqueries(s) {
			build(sub, sc)
		}
	}
	build(ctx.Stmt, nil)
}

// EachSelect visits the outer statement and every subquery with its scope,
// outermost first.
func (ctx *Context) EachSelect(fn func(s *sqlparser.SelectStmt, sc *scope)) {
	var visit func(s *sqlparser.SelectStmt)
	visit = func(s *sqlparser.SelectStmt) {
		fn(s, ctx.scopes[s])
		for _, sub := range directSubqueries(s) {
			visit(sub)
		}
	}
	visit(ctx.Stmt)
}

// SpanOf recovers the best-effort source span of an expression by locating
// its canonical rendering inside the statement text.
func (ctx *Context) SpanOf(e sqlparser.Expr) Span {
	if e == nil {
		return Span{}
	}
	frag := e.SQL()
	if i := strings.Index(ctx.SQL, frag); i >= 0 {
		return Span{Start: i, End: i + len(frag)}
	}
	return Span{}
}

// ---- shared AST traversal helpers ----

// children returns an expression's immediate sub-expressions, NOT descending
// into subqueries (those form their own scope).
func children(e sqlparser.Expr) []sqlparser.Expr {
	switch t := e.(type) {
	case *sqlparser.BinaryExpr:
		return []sqlparser.Expr{t.L, t.R}
	case *sqlparser.UnaryExpr:
		return []sqlparser.Expr{t.X}
	case *sqlparser.FuncCall:
		return append([]sqlparser.Expr(nil), t.Args...)
	case *sqlparser.CaseExpr:
		var out []sqlparser.Expr
		for _, w := range t.Whens {
			out = append(out, w.Cond, w.Result)
		}
		if t.Else != nil {
			out = append(out, t.Else)
		}
		return out
	case *sqlparser.InExpr:
		return append([]sqlparser.Expr{t.X}, t.List...)
	case *sqlparser.BetweenExpr:
		return []sqlparser.Expr{t.X, t.Lo, t.Hi}
	case *sqlparser.LikeExpr:
		return []sqlparser.Expr{t.X, t.Pattern}
	case *sqlparser.IsNullExpr:
		return []sqlparser.Expr{t.X}
	}
	return nil
}

// walkLevel applies fn to e and all descendants at the same query level
// (subqueries excluded).
func walkLevel(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	for _, c := range children(e) {
		walkLevel(c, fn)
	}
}

// clauseExpr pairs a top-level expression with the clause that owns it.
type clauseExpr struct {
	clause string
	expr   sqlparser.Expr
}

// topExprs enumerates the statement's own top-level expressions by clause.
func topExprs(s *sqlparser.SelectStmt) []clauseExpr {
	var out []clauseExpr
	for _, it := range s.Items {
		if it.Expr != nil {
			out = append(out, clauseExpr{"SELECT", it.Expr})
		}
	}
	for _, j := range s.Joins {
		if j.On != nil {
			out = append(out, clauseExpr{"ON", j.On})
		}
	}
	if s.Where != nil {
		out = append(out, clauseExpr{"WHERE", s.Where})
	}
	for _, g := range s.GroupBy {
		out = append(out, clauseExpr{"GROUP BY", g})
	}
	if s.Having != nil {
		out = append(out, clauseExpr{"HAVING", s.Having})
	}
	for _, o := range s.OrderBy {
		out = append(out, clauseExpr{"ORDER BY", o.Expr})
	}
	return out
}

// directSubqueries returns the statement's immediate child subqueries.
func directSubqueries(s *sqlparser.SelectStmt) []*sqlparser.SelectStmt {
	var subs []*sqlparser.SelectStmt
	var visit func(e sqlparser.Expr)
	visit = func(e sqlparser.Expr) {
		if e == nil {
			return
		}
		switch t := e.(type) {
		case *sqlparser.InExpr:
			if t.Sub != nil {
				subs = append(subs, t.Sub)
			}
		case *sqlparser.ExistsExpr:
			subs = append(subs, t.Sub)
		case *sqlparser.SubqueryExpr:
			subs = append(subs, t.Sub)
		}
		for _, c := range children(e) {
			visit(c)
		}
	}
	for _, ce := range topExprs(s) {
		visit(ce.expr)
	}
	return subs
}

// containsAggregate reports whether e contains an aggregate call at this
// query level.
func containsAggregate(e sqlparser.Expr) bool {
	found := false
	walkLevel(e, func(x sqlparser.Expr) {
		if f, ok := x.(*sqlparser.FuncCall); ok && f.IsAggregate() {
			found = true
		}
	})
	return found
}
