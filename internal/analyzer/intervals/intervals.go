// Package intervals is the cost tier of SQLBarber's static-analysis layer:
// an abstract interpretation of compiled plans over interval-valued
// parameter slots. Where package analyzer proves templates *invalid* before
// an LLM or DBMS call, this package proves cost ranges *unreachable* before
// a single profiling probe — templates whose sound cost bounds miss every
// requested target band are pruned (I001), templates whose bounds collapse
// to a point skip the LHS sweep (I002), and the surviving templates hand BO
// a search box narrowed to the slot regions that can still reach a wanted
// band.
//
// Everything here is a pure function of (template, catalog, target): no
// randomness, no probe results, no shared mutable state — which is what lets
// the pipeline make identical prune/flat/box decisions at any parallelism.
package intervals

import (
	"fmt"
	"math"

	"sqlbarber/internal/analyzer"
	"sqlbarber/internal/bo"
	"sqlbarber/internal/catalog"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/profiler"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltemplate"
	"sqlbarber/internal/stats"
)

// boxCells is the per-dimension resolution of the search-box projection:
// each numeric slot domain is split into this many equal cells, and cells
// whose bounds provably miss every wanted band are cut from BO's box.
const boxCells = 8

// Analysis is the static cost-interval verdict for one template.
type Analysis struct {
	// TemplateID echoes the analyzed template's ID.
	TemplateID int
	// Available reports whether sound bounds could be computed at all: the
	// cost kind is estimator-backed (Cardinality or PlanCost), the template
	// compiles, and every placeholder has a derivable domain. When false,
	// Reason says why and no pruning or narrowing may be based on this
	// analysis.
	Available bool
	// Reason explains an unavailable analysis.
	Reason string
	// Est holds both bounded quantities (rows and total cost).
	Est plan.BoundsEstimate
	// Bounds is the sound bound on the profiled metric under the analyzed
	// CostKind: Est.Rows for Cardinality, Est.Cost for PlanCost.
	Bounds plan.CostBounds
	// Pruned marks that Bounds provably misses every target band with a
	// non-zero requested count: no probe of this template can ever land in a
	// wanted band, so profiling it is pure waste.
	Pruned bool
	// Flat marks a template whose metric is provably (near-)constant over
	// the whole slot domain: one probe tells everything an LHS sweep would.
	Flat bool
	// Box, when non-nil, is a narrowed BO search space covering exactly the
	// slot cells whose bounds can still intersect a wanted band. nil means
	// no narrowing was possible (or the full space is already tight).
	Box bo.Space
	// Diagnostics carries the coded I-series findings for AttemptTrace.
	Diagnostics []analyzer.Diagnostic
}

// Analyze statically bounds one template's achievable metric range and
// derives the prune / flat / search-box verdicts against the target
// distribution. target may be nil, in which case bounds and flatness are
// still computed but nothing is pruned and no box is derived.
func Analyze(schema *catalog.Schema, t *sqltemplate.Template, kind engine.CostKind, target *stats.TargetDistribution) *Analysis {
	a := &Analysis{TemplateID: t.ID}
	if kind != engine.Cardinality && kind != engine.PlanCost {
		return a.unavailable(fmt.Sprintf("cost kind %s is measured, not estimated; no static bounds exist", kind))
	}
	// Compile a fresh parse: plan.Compile takes ownership of the statement
	// and rewrites its placeholders, so the template's own AST must not be
	// handed over.
	stmt, err := sqlparser.Parse(t.SQL())
	if err != nil {
		return a.unavailable("template does not re-parse: " + err.Error())
	}
	cq, err := plan.Compile(schema, stmt)
	if err != nil {
		return a.unavailable("template does not compile: " + err.Error())
	}
	bindings, err := t.BindPlaceholders(schema)
	if err != nil {
		return a.unavailable("placeholders do not bind: " + err.Error())
	}
	var space *profiler.SearchSpace
	domains := map[string]plan.ParamDomain{}
	if len(bindings) > 0 {
		space, err = profiler.BuildSearchSpace(t, bindings)
		if err != nil {
			return a.unavailable("no sampleable domain: " + err.Error())
		}
		for _, d := range space.Dims {
			domains[d.Binding.Name] = domainOf(d)
		}
	}
	est, err := cq.EstimateBounds(domains)
	if err != nil {
		return a.unavailable("bounds evaluation failed: " + err.Error())
	}
	a.Available = true
	a.Est = est
	a.Bounds = metricOf(est, kind)

	if target != nil && !overlapsWanted(a.Bounds, target) {
		a.Pruned = true
		a.Diagnostics = append(a.Diagnostics, analyzer.Diagnostic{
			Code:     analyzer.CodeIntervalPruned,
			Severity: analyzer.Info,
			Msg: fmt.Sprintf("static %s bounds [%.6g, %.6g] miss every requested cost band; template pruned before profiling",
				kind, a.Bounds.Lo, a.Bounds.Hi),
		})
		return a
	}
	if len(bindings) > 0 && flatWidth(a.Bounds) {
		a.Flat = true
		a.Diagnostics = append(a.Diagnostics, analyzer.Diagnostic{
			Code:     analyzer.CodeIntervalFlat,
			Severity: analyzer.Info,
			Msg: fmt.Sprintf("static %s bounds [%.6g, %.6g] are flat across the slot domain; one probe replaces the LHS sweep",
				kind, a.Bounds.Lo, a.Bounds.Hi),
		})
		return a
	}
	if target != nil && space != nil {
		a.Box = projectBox(cq, space, domains, kind, target)
	}
	return a
}

func (a *Analysis) unavailable(reason string) *Analysis {
	a.Reason = reason
	a.Diagnostics = append(a.Diagnostics, analyzer.Diagnostic{
		Code:     analyzer.CodeIntervalUnavailable,
		Severity: analyzer.Info,
		Msg:      "interval analysis unavailable: " + reason,
	})
	return a
}

// metricOf selects the bounded quantity matching the profiled CostKind.
func metricOf(est plan.BoundsEstimate, kind engine.CostKind) plan.CostBounds {
	if kind == engine.Cardinality {
		return est.Rows
	}
	return est.Cost
}

// flatWidth reports whether a bound interval is collapsed up to the shared
// estimator epsilon (relative to magnitude, absolute near zero).
func flatWidth(b plan.CostBounds) bool {
	return stats.ApproxEqual(b.Lo, b.Hi)
}

// domainOf converts one profiler search dimension into the sound ParamDomain
// the interval evaluator needs. The profiler's probe machinery can step
// slightly outside the nominal [Lo, Hi]: bo.Space.Denormalize leaves
// continuous values unclamped (round-off can escape by ulps) and rounds
// integer dimensions before clamping, while Dimension.Value then truncates
// toward zero — both stay within one unit of the nominal range. The domain
// is therefore widened by one unit for integer dimensions and four ulps
// outward in every numeric case.
func domainOf(d profiler.Dimension) plan.ParamDomain {
	if d.Options != nil {
		return plan.ParamDomain{Options: d.Options}
	}
	return widenNumeric(d.Param.Lo, d.Param.Hi, d.Param.Integer)
}

func widenNumeric(lo, hi float64, integer bool) plan.ParamDomain {
	if integer {
		lo, hi = lo-1, hi+1
	}
	for i := 0; i < 4; i++ {
		lo = math.Nextafter(lo, math.Inf(-1))
		hi = math.Nextafter(hi, math.Inf(1))
	}
	return plan.ParamDomain{Numeric: true, Lo: lo, Hi: hi}
}

// overlapsWanted reports whether the bound interval intersects any target
// band with a non-zero requested count. Bands are half-open [Lo, Hi) except
// the last, which is closed on top — mirroring stats.Intervals.Index.
func overlapsWanted(b plan.CostBounds, target *stats.TargetDistribution) bool {
	for j, want := range target.Counts {
		if want <= 0 {
			continue
		}
		iv := target.Intervals[j]
		if b.Hi < iv.Lo {
			continue
		}
		if j == len(target.Intervals)-1 {
			if b.Lo <= iv.Hi {
				return true
			}
		} else if b.Lo < iv.Hi {
			return true
		}
	}
	return false
}

// projectBox narrows the BO search space dimension by dimension: each
// numeric dimension is split into boxCells equal cells, bounds are
// re-evaluated with that dimension restricted to the cell (all others at
// full domain), and cells whose bounds provably miss every wanted band are
// cut. The returned space is the hull of the surviving cells per dimension;
// nil when no dimension could be narrowed. Categorical dimensions pass
// through untouched.
//
// Cutting a cell is safe for workload quality: a probe inside a cut cell is
// statically guaranteed to land outside every wanted band, so BO loses only
// probes that could never contribute a selectable query.
func projectBox(cq *plan.CompiledQuery, space *profiler.SearchSpace, full map[string]plan.ParamDomain, kind engine.CostKind, target *stats.TargetDistribution) bo.Space {
	box := space.BOSpace()
	narrowed := false
	for i, d := range space.Dims {
		if d.Options != nil {
			continue
		}
		p := box[i]
		span := p.Hi - p.Lo
		if !(span > 0) {
			continue
		}
		keptLo, keptHi := math.Inf(1), math.Inf(-1)
		cut := false
		for c := 0; c < boxCells; c++ {
			cl := p.Lo + span*float64(c)/boxCells
			ch := p.Lo + span*float64(c+1)/boxCells
			doms := make(map[string]plan.ParamDomain, len(full))
			for k, v := range full {
				doms[k] = v
			}
			doms[d.Binding.Name] = widenNumeric(cl, ch, p.Integer)
			est, err := cq.EstimateBounds(doms)
			if err != nil {
				return nil
			}
			if overlapsWanted(metricOf(est, kind), target) {
				keptLo = math.Min(keptLo, cl)
				keptHi = math.Max(keptHi, ch)
			} else {
				cut = true
			}
		}
		if !cut || !(keptHi > keptLo) {
			// Nothing cut, or everything cut (possible when the per-cell
			// bounds are tighter than the whole-domain bounds): keep the
			// full dimension.
			continue
		}
		if p.Integer {
			keptLo = math.Max(p.Lo, math.Floor(keptLo))
			keptHi = math.Min(p.Hi, math.Ceil(keptHi))
		}
		box[i].Lo, box[i].Hi = keptLo, keptHi
		narrowed = true
	}
	if !narrowed {
		return nil
	}
	return box
}
