package intervals_test

import (
	"context"
	"sync"
	"testing"

	"sqlbarber/internal/analyzer/intervals"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/generator"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/prand"
	"sqlbarber/internal/profiler"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltemplate"
	"sqlbarber/internal/stats"
)

// fuzzShapes sweeps the specification space the pipeline exercises: plain
// scans, joins, aggregation, nesting, and complex scalars.
var fuzzShapes = []spec.Spec{
	{NumJoins: spec.Int(0), NumPredicates: spec.Int(1)},
	{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), NestedQuery: spec.Bool(true)},
	{NumJoins: spec.Int(1), NumPredicates: spec.Int(2)},
	{NumJoins: spec.Int(1), NumPredicates: spec.Int(1), GroupBy: spec.Bool(true), NumAggregations: spec.Int(2)},
	{NumJoins: spec.Int(2), NumPredicates: spec.Int(3)},
	{NumJoins: spec.Int(2), NumPredicates: spec.Int(2), NestedQuery: spec.Bool(true), GroupBy: spec.Bool(true)},
	{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), ComplexScalar: spec.Bool(true)},
}

// generateTemplates produces the fuzz corpus for one database.
func generateTemplates(t *testing.T, db *engine.DB, seed int64) []*sqltemplate.Template {
	t.Helper()
	gen := generator.New(db, llm.NewSim(llm.Perfect(seed)), generator.Options{Seed: seed})
	var out []*sqltemplate.Template
	for si, s := range fuzzShapes {
		res, err := gen.Generate(context.Background(), s)
		if err != nil {
			t.Fatalf("seed %d spec %d: generate: %v", seed, si, err)
		}
		if !res.Valid {
			t.Fatalf("seed %d spec %d: invalid template:\n%s", seed, si, res.Template.SQL())
		}
		out = append(out, res.Template)
	}
	return out
}

// compileFresh compiles a template's SQL on a fresh parse (plan.Compile
// takes ownership of the statement it is given).
func compileFresh(t *testing.T, db *engine.DB, tmpl *sqltemplate.Template) *plan.CompiledQuery {
	t.Helper()
	stmt, err := sqlparser.Parse(tmpl.SQL())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, tmpl.SQL())
	}
	cq, err := plan.Compile(db.Schema(), stmt)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, tmpl.SQL())
	}
	return cq
}

// TestBoundsSoundnessDifferential is the machine-checkable soundness
// contract: for every generated TPC-H/IMDB template, at least 300 concrete
// value environments are sampled through the SAME denormalization path the
// profiler and BO search use, and every environment's CostWith result must
// lie inside the static bounds — exact float64 comparison, no tolerance.
// The sample mixes a space-filling LHS design with the exact corners of the
// unit cube per dimension, so domain endpoints (where endpoint-evaluated
// interval arithmetic is tightest) are stressed directly.
func TestBoundsSoundnessDifferential(t *testing.T) {
	datasets := []struct {
		name string
		open func(int64) *engine.DB
	}{
		{"tpch", func(seed int64) *engine.DB { return engine.OpenTPCH(seed, 0.05) }},
		{"imdb", func(seed int64) *engine.DB { return engine.OpenIMDB(seed, 0.05) }},
	}
	const envsPerTemplate = 300
	templates, checked := 0, 0
	for _, ds := range datasets {
		for seed := int64(1); seed <= 3; seed++ {
			db := ds.open(seed)
			for ti, tmpl := range generateTemplates(t, db, seed) {
				a := intervals.Analyze(db.Schema(), tmpl, engine.PlanCost, nil)
				if !a.Available {
					t.Fatalf("%s seed %d template %d: analysis unavailable: %s\n%s", ds.name, seed, ti, a.Reason, tmpl.SQL())
				}
				templates++
				cq := compileFresh(t, db, tmpl)
				bindings, err := tmpl.BindPlaceholders(db.Schema())
				if err != nil {
					t.Fatalf("%s seed %d template %d: bind: %v", ds.name, seed, ti, err)
				}
				if len(bindings) == 0 {
					est, err := cq.CostWith(nil)
					if err != nil {
						t.Fatalf("%s seed %d template %d: CostWith: %v", ds.name, seed, ti, err)
					}
					assertContained(t, a, est, ds.name, seed, ti, tmpl.SQL())
					checked++
					continue
				}
				space, err := profiler.BuildSearchSpace(tmpl, bindings)
				if err != nil {
					t.Fatalf("%s seed %d template %d: search space: %v", ds.name, seed, ti, err)
				}
				boSpace := space.BOSpace()
				rng := prand.New(seed, prand.StageProfile, prand.HashString(tmpl.SQL()))
				unit := stats.LatinHypercube(rng, envsPerTemplate, len(space.Dims))
				// Exact unit-cube corners per dimension: all-lo, all-hi, and
				// each single-dimension extreme.
				corners := [][]float64{make([]float64, len(space.Dims)), make([]float64, len(space.Dims))}
				for i := range corners[1] {
					corners[1][i] = 1
				}
				for d := range space.Dims {
					lo := make([]float64, len(space.Dims))
					hi := make([]float64, len(space.Dims))
					for i := range hi {
						hi[i] = 0.5
						lo[i] = 0.5
					}
					lo[d], hi[d] = 0, 1
					corners = append(corners, lo, hi)
				}
				for pi, u := range append(unit, corners...) {
					raw := boSpace.Denormalize(u)
					vals := space.ValuesFor(raw)
					est, err := cq.CostWith(vals)
					if err != nil {
						t.Fatalf("%s seed %d template %d probe %d: CostWith: %v", ds.name, seed, ti, pi, err)
					}
					assertContained(t, a, est, ds.name, seed, ti, tmpl.SQL())
					checked++
				}
			}
		}
	}
	if checked < 300*templates/2 {
		t.Fatalf("fuzz checked only %d envs across %d templates", checked, templates)
	}
	t.Logf("soundness fuzz: %d templates, %d concrete envs, all inside static bounds", templates, checked)
}

func assertContained(t *testing.T, a *intervals.Analysis, est plan.Estimate, ds string, seed int64, ti int, sql string) {
	t.Helper()
	if !(a.Est.Rows.Lo <= est.Rows && est.Rows <= a.Est.Rows.Hi) {
		t.Fatalf("%s seed %d template %d: rows %v outside bounds [%v, %v]\n%s",
			ds, seed, ti, est.Rows, a.Est.Rows.Lo, a.Est.Rows.Hi, sql)
	}
	if !(a.Est.Cost.Lo <= est.Cost && est.Cost <= a.Est.Cost.Hi) {
		t.Fatalf("%s seed %d template %d: cost %v outside bounds [%v, %v]\n%s",
			ds, seed, ti, est.Cost, a.Est.Cost.Lo, a.Est.Cost.Hi, sql)
	}
}

// TestIntervalAnalysisConcurrentWithProbes is the race hammer: 8 goroutines
// share one CompiledQuery, half running interval analyses (EstimateBounds)
// and half running concrete CostWith probes, all asserting the soundness
// contract as they go. Run under -race this proves the abstract interpreter
// shares the compiled statement without writes.
func TestIntervalAnalysisConcurrentWithProbes(t *testing.T) {
	db := engine.OpenTPCH(1, 0.05)
	tmpl := generateTemplates(t, db, 1)[2] // 1-join, 2-predicate shape
	bindings, err := tmpl.BindPlaceholders(db.Schema())
	if err != nil || len(bindings) == 0 {
		t.Fatalf("need a placeholder-bearing template: %v", err)
	}
	space, err := profiler.BuildSearchSpace(tmpl, bindings)
	if err != nil {
		t.Fatal(err)
	}
	boSpace := space.BOSpace()
	cq := compileFresh(t, db, tmpl)
	a := intervals.Analyze(db.Schema(), tmpl, engine.PlanCost, nil)
	if !a.Available {
		t.Fatalf("analysis unavailable: %s", a.Reason)
	}
	domains := map[string]plan.ParamDomain{}
	for _, d := range space.Dims {
		if d.Options != nil {
			domains[d.Binding.Name] = plan.ParamDomain{Options: d.Options}
		} else {
			domains[d.Binding.Name] = plan.ParamDomain{Numeric: true, Lo: d.Param.Lo - 1, Hi: d.Param.Hi + 1}
		}
	}

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := prand.New(7, prand.StageProfile, int64(g))
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					if _, err := cq.EstimateBounds(domains); err != nil {
						errs <- err
						return
					}
					continue
				}
				u := make([]float64, len(space.Dims))
				for d := range u {
					u[d] = rng.Float64()
				}
				vals := space.ValuesFor(boSpace.Denormalize(u))
				est, err := cq.CostWith(vals)
				if err != nil {
					errs <- err
					return
				}
				if !(a.Est.Cost.Lo <= est.Cost && est.Cost <= a.Est.Cost.Hi) {
					t.Errorf("cost %v escaped bounds [%v, %v] under concurrency", est.Cost, a.Est.Cost.Lo, a.Est.Cost.Hi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
