package analyzer

import (
	"fmt"
	"strings"

	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// PredicatePass finds predicates that are statically decidable: literal
// comparisons that are always false (the whole conjunction returns nothing),
// contradictory equality/range constraints on the same column, and trivially
// true constant conditions. All of these are accepted by the engine, so they
// surface as warnings/info — but a workload full of empty-result queries
// defeats cost profiling, which is why the generator logs them.
type PredicatePass struct{}

// Name implements Pass.
func (PredicatePass) Name() string { return "predicates" }

// Run implements Pass.
func (PredicatePass) Run(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	ctx.EachSelect(func(s *sqlparser.SelectStmt, sc *scope) {
		for _, cond := range []sqlparser.Expr{s.Where, s.Having} {
			if cond == nil {
				continue
			}
			diags = append(diags, checkConstantComparisons(ctx, cond)...)
			diags = append(diags, checkContradictions(ctx, cond)...)
		}
	})
	return diags
}

// evalLiteralCmp decides a comparison between two literals; ok=false when
// either side is not a literal.
func evalLiteralCmp(op sqlparser.BinaryOp, l, r sqlparser.Expr) (result, ok bool) {
	ll, lok := l.(*sqlparser.Literal)
	rl, rok := r.(*sqlparser.Literal)
	if !lok || !rok {
		return false, false
	}
	c := ll.Value.Compare(rl.Value)
	switch op {
	case sqlparser.OpEq:
		return c == 0, true
	case sqlparser.OpNe:
		return c != 0, true
	case sqlparser.OpLt:
		return c < 0, true
	case sqlparser.OpLe:
		return c <= 0, true
	case sqlparser.OpGt:
		return c > 0, true
	case sqlparser.OpGe:
		return c >= 0, true
	}
	return false, false
}

// checkConstantComparisons flags literal-vs-literal comparisons and
// impossible literal BETWEEN ranges anywhere in the condition tree.
func checkConstantComparisons(ctx *Context, cond sqlparser.Expr) []Diagnostic {
	var diags []Diagnostic
	walkLevel(cond, func(e sqlparser.Expr) {
		switch t := e.(type) {
		case *sqlparser.BinaryExpr:
			if !t.Op.IsComparison() {
				return
			}
			res, ok := evalLiteralCmp(t.Op, t.L, t.R)
			if !ok {
				return
			}
			if !res {
				diags = append(diags, Diagnostic{
					Code: CodeAlwaysFalse, Severity: Warning, Span: ctx.SpanOf(t),
					Msg: fmt.Sprintf("predicate %s is always false", t.SQL()),
					Fix: "remove the contradiction or compare against a column",
				})
			} else {
				diags = append(diags, Diagnostic{
					Code: CodeConstantPredic, Severity: Info, Span: ctx.SpanOf(t),
					Msg: fmt.Sprintf("predicate %s is always true", t.SQL()),
				})
			}
		case *sqlparser.BetweenExpr:
			lo, lok := t.Lo.(*sqlparser.Literal)
			hi, hok := t.Hi.(*sqlparser.Literal)
			if lok && hok && lo.Value.Compare(hi.Value) > 0 && !t.Not {
				diags = append(diags, Diagnostic{
					Code: CodeAlwaysFalse, Severity: Warning, Span: ctx.SpanOf(t),
					Msg: fmt.Sprintf("BETWEEN range is empty: %s", t.SQL()),
					Fix: "swap the BETWEEN bounds",
				})
			}
		}
	})
	return diags
}

// colBound is one literal constraint on a column inside a conjunction.
type colBound struct {
	op  sqlparser.BinaryOp
	val sqltypes.Value
	sql string
}

// checkContradictions walks the top-level AND-conjunction and reports
// columns constrained to disjoint value sets: `c = 1 AND c = 2`, or a lower
// bound above an upper bound (`c > 9 AND c < 3`).
func checkContradictions(ctx *Context, cond sqlparser.Expr) []Diagnostic {
	bounds := map[string][]colBound{}
	var collect func(e sqlparser.Expr)
	collect = func(e sqlparser.Expr) {
		b, ok := e.(*sqlparser.BinaryExpr)
		if !ok {
			return
		}
		if b.Op == sqlparser.OpAnd {
			collect(b.L)
			collect(b.R)
			return
		}
		if !b.Op.IsComparison() {
			return
		}
		// Normalize to column-op-literal.
		col, lit, op := b.L, b.R, b.Op
		if _, isLit := col.(*sqlparser.Literal); isLit {
			col, lit = lit, col
			op = flipOp(op)
		}
		cr, crOK := col.(*sqlparser.ColumnRef)
		lv, litOK := lit.(*sqlparser.Literal)
		if !crOK || !litOK {
			return
		}
		key := strings.ToLower(cr.SQL())
		bounds[key] = append(bounds[key], colBound{op: op, val: lv.Value, sql: b.SQL()})
	}
	collect(cond)

	var diags []Diagnostic
	for col, bs := range bounds {
		if len(bs) < 2 {
			continue
		}
		if msg := contradictionIn(bs); msg != "" {
			diags = append(diags, Diagnostic{
				Code: CodeContradiction, Severity: Warning,
				Msg: fmt.Sprintf("constraints on %s are contradictory: %s", col, msg),
				Fix: "drop one of the conflicting predicates",
			})
		}
	}
	return diags
}

func flipOp(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	}
	return op
}

// contradictionIn reports the first pair of mutually exclusive bounds.
func contradictionIn(bs []colBound) string {
	for i := 0; i < len(bs); i++ {
		for j := i + 1; j < len(bs); j++ {
			a, b := bs[i], bs[j]
			c := a.val.Compare(b.val)
			aLow, aHigh := isLowerBound(a.op), isUpperBound(a.op)
			bLow, bHigh := isLowerBound(b.op), isUpperBound(b.op)
			switch {
			case a.op == sqlparser.OpEq && b.op == sqlparser.OpEq && c != 0:
				return a.sql + " vs " + b.sql
			case a.op == sqlparser.OpEq && bLow && !satisfies(c, b.op):
				return a.sql + " vs " + b.sql
			case a.op == sqlparser.OpEq && bHigh && !satisfies(c, b.op):
				return a.sql + " vs " + b.sql
			case b.op == sqlparser.OpEq && aLow && !satisfies(-c, a.op):
				return a.sql + " vs " + b.sql
			case b.op == sqlparser.OpEq && aHigh && !satisfies(-c, a.op):
				return a.sql + " vs " + b.sql
			case aLow && bHigh && !rangeFeasible(a, b):
				return a.sql + " vs " + b.sql
			case aHigh && bLow && !rangeFeasible(b, a):
				return a.sql + " vs " + b.sql
			}
		}
	}
	return ""
}

func isLowerBound(op sqlparser.BinaryOp) bool {
	return op == sqlparser.OpGt || op == sqlparser.OpGe
}

func isUpperBound(op sqlparser.BinaryOp) bool {
	return op == sqlparser.OpLt || op == sqlparser.OpLe
}

// satisfies reports whether an equality value at comparison result c (value
// vs bound) meets the bound's operator.
func satisfies(c int, op sqlparser.BinaryOp) bool {
	switch op {
	case sqlparser.OpGt:
		return c > 0
	case sqlparser.OpGe:
		return c >= 0
	case sqlparser.OpLt:
		return c < 0
	case sqlparser.OpLe:
		return c <= 0
	}
	return true
}

// rangeFeasible reports whether lower bound lo and upper bound hi leave any
// values: lo.val < hi.val, or equal with both bounds inclusive.
func rangeFeasible(lo, hi colBound) bool {
	c := lo.val.Compare(hi.val)
	if c < 0 {
		return true
	}
	if c == 0 {
		return lo.op == sqlparser.OpGe && hi.op == sqlparser.OpLe
	}
	return false
}
