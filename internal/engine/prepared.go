package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"sqlbarber/internal/obs"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// Prepared is a template whose SQL has been lexed, parsed, placeholder-
// bound, and plan-compiled exactly once (plan.Compile). Optimizer-estimated
// probes (Cardinality, PlanCost) run through the compiled parametric plan:
// values are passed into the immutable skeleton, nothing is locked, nothing
// is mutated, and any number of goroutines may probe one Prepared
// concurrently — this is the hot path of §5.1 profiling sweeps and §5.3 BO
// search. Measured probes (ExecTimeMS, RowsProcessed) must materialize the
// values into the AST and execute, so they serialize on an internal mutex;
// they never block the estimate path.
type Prepared struct {
	db   *DB
	text string
	cq   *plan.CompiledQuery

	// execMu serializes measured-kind probes and CostReplan: both assign
	// values into the compiled statement's literal slots and re-plan or
	// execute the bound AST.
	execMu sync.Mutex
}

// Prepare parses and plan-compiles the template SQL once. The compiled
// statement is validated by planning it with neutral zero values, so defects
// surface at prepare time rather than on the first probe. Prepare itself
// performs no DBMS evaluation — the explain/execute counters are untouched,
// preserving call parity with the re-parse path.
func (db *DB) Prepare(templateSQL string) (*Prepared, error) {
	stmt, err := sqlparser.Parse(templateSQL)
	if err != nil {
		return nil, fmt.Errorf("engine: prepare: %w", err)
	}
	cq, err := plan.Compile(db.store.Schema, stmt)
	if err != nil {
		return nil, fmt.Errorf("engine: prepare: %w", err)
	}
	return &Prepared{db: db, text: templateSQL, cq: cq}, nil
}

// SQL returns the original template text.
func (p *Prepared) SQL() string { return p.text }

// Placeholders returns the sorted placeholder names the template declares.
func (p *Prepared) Placeholders() []string { return p.cq.Placeholders() }

// Cost evaluates the template at the given placeholder values under the
// requested metric. Values are validated and normalized before anything
// else — a probe with missing placeholders has no effect. Estimate kinds
// never lock and never touch the AST; measured kinds serialize on the
// internal exec mutex. Cost increments the same DBMS-evaluation counters as
// DB.Cost, so a prepared run reports identical evaluation counts to a
// re-parse run.
func (p *Prepared) Cost(ctx context.Context, vals map[string]sqltypes.Value, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	params, err := p.cq.BindVals(vals)
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.costParams(params, kind)
}

// CostBatch evaluates the template at a sweep of placeholder bindings,
// reusing one parameter buffer across probes. It returns the costs computed
// so far plus the first error encountered (probes after the failure are not
// attempted); cancellation is checked between probes. The db_prepared_batches
// counter increments once per sweep, db_prepared_probes once per probe —
// profiler LHS sweeps and BO waves go through here.
func (p *Prepared) CostBatch(ctx context.Context, vals []map[string]sqltypes.Value, kind CostKind) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.db.preparedBatches.Add(1)
	out := make([]float64, 0, len(vals))
	var params []sqltypes.Value
	for _, m := range vals {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		var err error
		params, err = p.cq.BindValsInto(params, m)
		if err != nil {
			return out, fmt.Errorf("engine: prepared cost: %w", err)
		}
		c, err := p.costParams(params, kind)
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
	return out, nil
}

// costParams serves one validated probe.
func (p *Prepared) costParams(params []sqltypes.Value, kind CostKind) (float64, error) {
	switch kind {
	case Cardinality, PlanCost:
		p.db.explainCount.Add(1)
		p.db.preparedProbes.Add(1)
		est := p.cq.EstimateWith(params)
		if kind == Cardinality {
			return est.Rows, nil
		}
		return est.Cost, nil
	default:
		v, err := p.replanParams(params, kind)
		if err == nil {
			p.db.preparedProbes.Add(1)
		}
		return v, err
	}
}

// CostReplan is the pre-compilation baseline: assign the values into the
// AST's literal slots under a lock and re-run the full planner. Measured
// cost kinds go through it (execution needs the bound AST), and the
// `-exp probe` microbenchmark uses it as the re-plan arm that compiled
// probing is measured against. Results are bit-identical to Cost.
func (p *Prepared) CostReplan(ctx context.Context, vals map[string]sqltypes.Value, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	params, err := p.cq.BindVals(vals)
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.replanParams(params, kind)
}

// replanParams materializes the probe values into the compiled statement and
// re-plans it from the AST, serialized on execMu. The estimate path never
// reads the literal slots (values travel through the evaluation environment
// instead), so concurrent estimate probes are unaffected by the mutation.
func (p *Prepared) replanParams(params []sqltypes.Value, kind CostKind) (float64, error) {
	p.execMu.Lock()
	defer p.execMu.Unlock()
	p.cq.AssignSlots(params)
	q, err := plan.Build(p.db.store.Schema, p.cq.Stmt())
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.db.costOfPlan(q, kind)
}

// planCache is a sharded, bounded LRU of parsed-and-planned ad-hoc SQL. It
// caps both entry count and approximate memory (entryBytes), enforced per
// shard; sharding by SQL hash keeps concurrent goroutines off one mutex.
// Templates dominate probe traffic through Prepared, while repeated ad-hoc
// statements (validation probes, workload re-scoring) hit the cache instead
// of re-lexing. The hit/miss counters are exported as volatile obs metrics:
// under parallel runs the LRU's contents depend on goroutine interleaving,
// so these two counts are legitimately scheduling-dependent and excluded
// from the deterministic snapshot.
type planCache struct {
	shards []*planShard

	hits   obs.Counter
	misses obs.Counter
}

// planCacheShardCount is the shard fan-out for full-size caches. Tiny caches
// (tests) collapse to one shard so the entry bound stays exact.
const planCacheShardCount = 8

type planShard struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List
	m          map[string]*list.Element
	bytes      int64
}

type planEntry struct {
	sql   string
	q     *plan.Query
	bytes int64
}

// entryBytes approximates one cached plan's memory footprint: a fixed
// overhead for the entry, list element, and plan skeleton, plus terms
// proportional to the SQL text (the key copy and the roughly text-sized
// AST/plan structures).
func entryBytes(sql string) int64 {
	return 512 + 2*int64(len(sql))
}

func newPlanCache(maxEntries int, maxBytes int64) *planCache {
	n := planCacheShardCount
	if maxEntries < n {
		n = 1
	}
	c := &planCache{shards: make([]*planShard, n)}
	for i := range c.shards {
		c.shards[i] = &planShard{
			maxEntries: maxEntries / n,
			maxBytes:   maxBytes / int64(n),
			ll:         list.New(),
			m:          map[string]*list.Element{},
		}
	}
	return c
}

// shard picks the shard for a SQL string via FNV-1a (allocation-free).
func (c *planCache) shard(sql string) *planShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(sql); i++ {
		h ^= uint32(sql[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

func (c *planCache) get(sql string) (*plan.Query, bool) {
	s := c.shard(sql)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[sql]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	s.ll.MoveToFront(el)
	return el.Value.(*planEntry).q, true
}

func (c *planCache) put(sql string, q *plan.Query) {
	s := c.shard(sql)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[sql]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*planEntry).q = q
		return
	}
	e := &planEntry{sql: sql, q: q, bytes: entryBytes(sql)}
	s.m[sql] = s.ll.PushFront(e)
	s.bytes += e.bytes
	for s.ll.Len() > s.maxEntries || (s.bytes > s.maxBytes && s.ll.Len() > 1) {
		last := s.ll.Back()
		le := last.Value.(*planEntry)
		s.ll.Remove(last)
		delete(s.m, le.sql)
		s.bytes -= le.bytes
	}
}

// len reports the number of cached plans across shards (used by tests).
func (c *planCache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// approxBytes reports the cache's approximate memory footprint (tests).
func (c *planCache) approxBytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}
