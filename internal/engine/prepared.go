package engine

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"sqlbarber/internal/obs"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// Prepared is a template whose SQL has been lexed, parsed, and
// placeholder-bound exactly once. Each {name} placeholder in the template is
// replaced by a mutable literal slot inside the retained AST; Cost assigns
// the probe values into those slots and re-plans, skipping the per-probe
// lex/parse that dominates profiling and BO search when costs are
// optimizer-estimated. Safe for concurrent use (slot assignment + plan is
// serialized by an internal mutex; independent Prepared values do not
// contend).
type Prepared struct {
	db   *DB
	text string

	mu    sync.Mutex
	stmt  *sqlparser.SelectStmt
	slots map[string][]*sqlparser.Literal
	names []string // sorted placeholder names, for deterministic errors
}

// Prepare parses the template SQL once and binds every placeholder to a
// mutable literal slot. The rewritten statement is validated by planning it
// with neutral zero values, so defects surface at prepare time rather than
// on the first probe. Prepare itself performs no DBMS evaluation — the
// explain/execute counters are untouched, preserving call parity with the
// re-parse path.
func (db *DB) Prepare(templateSQL string) (*Prepared, error) {
	stmt, err := sqlparser.Parse(templateSQL)
	if err != nil {
		return nil, fmt.Errorf("engine: prepare: %w", err)
	}
	p := &Prepared{
		db:    db,
		text:  templateSQL,
		stmt:  stmt,
		slots: map[string][]*sqlparser.Literal{},
	}
	stmt.RewriteExprs(func(e sqlparser.Expr) sqlparser.Expr {
		ph, ok := e.(*sqlparser.Placeholder)
		if !ok {
			return e
		}
		lit := &sqlparser.Literal{Value: sqltypes.NewInt(0)}
		p.slots[ph.Name] = append(p.slots[ph.Name], lit)
		return lit
	})
	for name := range p.slots {
		p.names = append(p.names, name)
	}
	sort.Strings(p.names)
	if _, err := plan.Build(db.store.Schema, stmt); err != nil {
		return nil, fmt.Errorf("engine: prepare: %w", err)
	}
	return p, nil
}

// SQL returns the original template text.
func (p *Prepared) SQL() string { return p.text }

// Placeholders returns the sorted placeholder names the template declares.
func (p *Prepared) Placeholders() []string {
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// normalizeLiteral mirrors the lexer's numeric tokenization so a prepared
// probe sees exactly the value a re-parse of the rendered SQL would: a float
// whose shortest rendering has no '.' or exponent lexes back as an integer
// literal, so it is stored as one here too.
func normalizeLiteral(v sqltypes.Value) sqltypes.Value {
	if v.Kind() != sqltypes.KindFloat {
		return v
	}
	s := strconv.FormatFloat(v.Float(), 'g', -1, 64)
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return sqltypes.NewInt(n)
	}
	return v
}

// Cost assigns the probe values into the template's literal slots, re-plans
// the retained AST, and returns the query cost under the requested metric.
// It increments the same DBMS-evaluation counters as DB.Cost, so a
// prepared-template run reports identical evaluation counts to a re-parse
// run. Plans are value-dependent (selectivity estimates read the bound
// literals), so planning happens per probe; only lex/parse is skipped.
func (p *Prepared) Cost(ctx context.Context, vals map[string]sqltypes.Value, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var missing []string
	for _, name := range p.names {
		v, ok := vals[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		nv := normalizeLiteral(v)
		for _, lit := range p.slots[name] {
			lit.Value = nv
		}
	}
	if len(missing) > 0 {
		return 0, fmt.Errorf("engine: prepared cost: missing values for placeholders %v", missing)
	}
	q, err := plan.Build(p.db.store.Schema, p.stmt)
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.db.costOfPlan(q, kind)
}

// planCache is a bounded LRU of parsed-and-planned ad-hoc SQL. It caps both
// entry count and memory: templates dominate probe traffic through Prepared,
// while repeated ad-hoc statements (validation probes, workload re-scoring)
// hit the cache instead of re-lexing. The hit/miss counters are exported as
// volatile obs metrics: under parallel runs the LRU's contents depend on
// goroutine interleaving, so these two counts are legitimately
// scheduling-dependent and excluded from the deterministic snapshot.
type planCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List
	m   map[string]*list.Element

	hits   obs.Counter
	misses obs.Counter
}

type planEntry struct {
	sql string
	q   *plan.Query
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), m: make(map[string]*list.Element, max)}
}

func (c *planCache) get(sql string) (*plan.Query, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sql]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).q, true
}

func (c *planCache) put(sql string, q *plan.Query) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sql]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planEntry).q = q
		return
	}
	c.m[sql] = c.ll.PushFront(&planEntry{sql: sql, q: q})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*planEntry).sql)
	}
}

// len reports the number of cached plans (used by tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
