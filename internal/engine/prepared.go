package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"sqlbarber/internal/obs"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
)

// Prepared is a template whose SQL has been lexed, parsed, placeholder-
// bound, and plan-compiled exactly once (plan.Compile). Every probe kind runs
// lock-free against the immutable compiled skeleton: optimizer-estimated
// probes (Cardinality, PlanCost) evaluate through the parametric-plan
// estimator, and measured probes (ExecTimeMS, RowsProcessed) execute the
// skeleton under an immutable value environment (plan.BindParams) inside an
// engine Session. Nothing is written into the AST after Compile, so any
// number of goroutines may mix probe kinds on one Prepared concurrently —
// this is the hot path of §5.1 profiling sweeps and §5.3 BO search.
type Prepared struct {
	db   *DB
	text string
	cq   *plan.CompiledQuery

	// replanMu serializes CostReplan only — the pre-compilation baseline that
	// assigns values into the statement's literal slots and re-plans the
	// bound AST. It exists for benchmarks and differential tests; no
	// production probe path takes it.
	replanMu sync.Mutex
}

// Prepare parses and plan-compiles the template SQL once. The compiled
// statement is validated by planning it with neutral zero values, so defects
// surface at prepare time rather than on the first probe. Prepare itself
// performs no DBMS evaluation — the explain/execute counters are untouched,
// preserving call parity with the re-parse path.
func (db *DB) Prepare(templateSQL string) (*Prepared, error) {
	stmt, err := sqlparser.Parse(templateSQL)
	if err != nil {
		return nil, fmt.Errorf("engine: prepare: %w", err)
	}
	cq, err := plan.Compile(db.store.Schema, stmt)
	if err != nil {
		return nil, fmt.Errorf("engine: prepare: %w", err)
	}
	return &Prepared{db: db, text: templateSQL, cq: cq}, nil
}

// SQL returns the original template text.
func (p *Prepared) SQL() string { return p.text }

// Placeholders returns the sorted placeholder names the template declares.
func (p *Prepared) Placeholders() []string { return p.cq.Placeholders() }

// Cost evaluates the template at the given placeholder values under the
// requested metric. Values are validated and normalized before anything
// else — a probe with missing placeholders has no effect. No kind locks or
// touches the AST: estimate kinds go through the compiled evaluator, measured
// kinds borrow a pooled Session and execute under a value environment. Cost
// increments the same DBMS-evaluation counters as DB.Cost, so a prepared run
// reports identical evaluation counts to a re-parse run.
func (p *Prepared) Cost(ctx context.Context, vals map[string]sqltypes.Value, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	params, err := p.cq.BindVals(vals)
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.costParams(params, kind)
}

// CostBatch evaluates the template at a sweep of placeholder bindings,
// reusing one parameter buffer across probes. It returns the costs computed
// so far plus the first error encountered (probes after the failure are not
// attempted); cancellation is checked between probes. The db_prepared_batches
// counter increments once per sweep, db_prepared_probes once per probe —
// profiler LHS sweeps and BO waves go through here.
func (p *Prepared) CostBatch(ctx context.Context, vals []map[string]sqltypes.Value, kind CostKind) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.db.preparedBatches.Add(1)
	out := make([]float64, 0, len(vals))
	var params []sqltypes.Value
	for _, m := range vals {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		var err error
		params, err = p.cq.BindValsInto(params, m)
		if err != nil {
			return out, fmt.Errorf("engine: prepared cost: %w", err)
		}
		c, err := p.costParams(params, kind)
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
	return out, nil
}

// costParams serves one validated probe.
func (p *Prepared) costParams(params []sqltypes.Value, kind CostKind) (float64, error) {
	switch kind {
	case Cardinality, PlanCost:
		p.db.explainCount.Add(1)
		p.db.preparedProbes.Add(1)
		est := p.cq.EstimateWith(params)
		if kind == Cardinality {
			return est.Rows, nil
		}
		return est.Cost, nil
	default:
		s := p.db.getSession()
		defer p.db.putSession(s)
		return s.execParams(p, params, kind)
	}
}

// CostBatchParallel evaluates a sweep of placeholder bindings across
// per-worker sessions. Unlike CostBatch it has attempt-all semantics: every
// binding is validated up front (any invalid probe fails the whole sweep
// before anything is evaluated), then every probe is attempted regardless of
// other probes' failures, and the first error in probe order is returned with
// the full cost vector. Counter movement is therefore a function of the probe
// schedule alone — identical at every parallel level — which is what lets the
// profiler fan measured sweeps out without perturbing the deterministic
// snapshot. The db_prepared_batches counter increments once per sweep, like
// CostBatch.
func (p *Prepared) CostBatchParallel(ctx context.Context, vals []map[string]sqltypes.Value, kind CostKind, parallel int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	paramsList := make([][]sqltypes.Value, len(vals))
	for i, m := range vals {
		ps, err := p.cq.BindVals(m)
		if err != nil {
			return nil, fmt.Errorf("engine: prepared cost: %w", err)
		}
		paramsList[i] = ps
	}
	p.db.preparedBatches.Add(1)
	out := make([]float64, len(vals))
	errs := make([]error, len(vals))
	workers := parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(vals) {
		workers = len(vals)
	}
	serve := func(s *Session, lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			out[i], errs[i] = s.costParams(p, paramsList[i], kind)
		}
	}
	if workers <= 1 {
		s := p.db.getSession()
		serve(s, 0, len(paramsList))
		p.db.putSession(s)
	} else {
		// Contiguous ranges: each worker sweeps its own slice of the probe
		// schedule with its own session, writing into fixed output slots.
		var wg sync.WaitGroup
		per := (len(paramsList) + workers - 1) / workers
		for lo := 0; lo < len(paramsList); lo += per {
			hi := lo + per
			if hi > len(paramsList) {
				hi = len(paramsList)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				s := p.db.getSession()
				defer p.db.putSession(s)
				serve(s, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("engine: prepared cost: probe %d: %w", i, err)
		}
	}
	return out, nil
}

// CostReplan is the pre-compilation baseline: assign the values into the
// AST's literal slots under a lock and re-run the full planner (and, for
// measured kinds, execute the re-built bound plan). The `-exp probe` and
// `-exp measured` microbenchmarks use it as the serialized re-plan arm that
// compiled lock-free probing is measured against, and the differential tests
// use it as the literal-materialized reference. Results are bit-identical to
// Cost; production probe paths never come here.
func (p *Prepared) CostReplan(ctx context.Context, vals map[string]sqltypes.Value, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	params, err := p.cq.BindVals(vals)
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.replanParams(params, kind)
}

// replanParams materializes the probe values into the compiled statement and
// re-plans it from the AST, serialized on replanMu. Neither the estimate path
// nor the session execution path ever reads the literal slots (values travel
// through their value environments instead), so concurrent probes of any kind
// are unaffected by the mutation.
func (p *Prepared) replanParams(params []sqltypes.Value, kind CostKind) (float64, error) {
	p.replanMu.Lock()
	defer p.replanMu.Unlock()
	p.cq.AssignSlots(params)
	q, err := plan.Build(p.db.store.Schema, p.cq.Stmt())
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return p.db.costOfPlan(q, kind)
}

// planCache is a sharded, bounded LRU of parsed-and-planned ad-hoc SQL. It
// caps both entry count and approximate memory (entryBytes), enforced per
// shard; sharding by SQL hash keeps concurrent goroutines off one mutex.
// Templates dominate probe traffic through Prepared, while repeated ad-hoc
// statements (validation probes, workload re-scoring) hit the cache instead
// of re-lexing. The hit/miss counters are exported as volatile obs metrics:
// under parallel runs the LRU's contents depend on goroutine interleaving,
// so these two counts are legitimately scheduling-dependent and excluded
// from the deterministic snapshot.
type planCache struct {
	shards []*planShard

	hits   obs.Counter
	misses obs.Counter
}

// planCacheShardCount is the shard fan-out for full-size caches. Tiny caches
// (tests) collapse to one shard so the entry bound stays exact.
const planCacheShardCount = 8

type planShard struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List
	m          map[string]*list.Element
	bytes      int64
}

type planEntry struct {
	sql   string
	q     *plan.Query
	bytes int64
}

// entryBytes approximates one cached plan's memory footprint: a fixed
// overhead for the entry, list element, and plan skeleton, plus terms
// proportional to the SQL text (the key copy and the roughly text-sized
// AST/plan structures).
func entryBytes(sql string) int64 {
	return 512 + 2*int64(len(sql))
}

func newPlanCache(maxEntries int, maxBytes int64) *planCache {
	n := planCacheShardCount
	if maxEntries < n {
		n = 1
	}
	c := &planCache{shards: make([]*planShard, n)}
	for i := range c.shards {
		c.shards[i] = &planShard{
			maxEntries: maxEntries / n,
			maxBytes:   maxBytes / int64(n),
			ll:         list.New(),
			m:          map[string]*list.Element{},
		}
	}
	return c
}

// shard picks the shard for a SQL string via FNV-1a (allocation-free).
func (c *planCache) shard(sql string) *planShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(sql); i++ {
		h ^= uint32(sql[i])
		h *= prime32
	}
	return c.shards[h%uint32(len(c.shards))]
}

func (c *planCache) get(sql string) (*plan.Query, bool) {
	s := c.shard(sql)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[sql]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	s.ll.MoveToFront(el)
	return el.Value.(*planEntry).q, true
}

func (c *planCache) put(sql string, q *plan.Query) {
	s := c.shard(sql)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[sql]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*planEntry).q = q
		return
	}
	e := &planEntry{sql: sql, q: q, bytes: entryBytes(sql)}
	s.m[sql] = s.ll.PushFront(e)
	s.bytes += e.bytes
	for s.ll.Len() > s.maxEntries || (s.bytes > s.maxBytes && s.ll.Len() > 1) {
		last := s.ll.Back()
		le := last.Value.(*planEntry)
		s.ll.Remove(last)
		delete(s.m, le.sql)
		s.bytes -= le.bytes
	}
}

// len reports the number of cached plans across shards (used by tests).
func (c *planCache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// approxBytes reports the cache's approximate memory footprint (tests).
func (c *planCache) approxBytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}
