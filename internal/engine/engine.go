// Package engine exposes the embedded relational engine behind the same
// narrow surface SQLBarber uses on PostgreSQL: Execute, Explain (estimated
// cardinality and plan cost), and syntax/semantic validation with DBMS-style
// error messages.
package engine

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/datagen"
	"sqlbarber/internal/exec"
	"sqlbarber/internal/obs"
	"sqlbarber/internal/plan"
	"sqlbarber/internal/sqlparser"
	"sqlbarber/internal/sqltypes"
	"sqlbarber/internal/storage"
)

// CostKind selects which query cost metric Cost returns (Definition 2.10).
type CostKind uint8

// Supported cost kinds.
const (
	// Cardinality is the optimizer-estimated number of output rows.
	Cardinality CostKind = iota
	// PlanCost is the optimizer-estimated total plan cost.
	PlanCost
	// ExecTimeMS is the measured execution wall time in milliseconds
	// (requires actually running the query).
	ExecTimeMS
	// RowsProcessed is the deterministic execution-effort metric: tuples
	// scanned plus intermediate join tuples while actually running the
	// query. Unlike ExecTimeMS it is reproducible across machines.
	RowsProcessed
)

// Measured reports whether the kind requires actually executing the query
// (as opposed to an optimizer estimate).
func (k CostKind) Measured() bool {
	return k == ExecTimeMS || k == RowsProcessed
}

// String names the cost kind.
func (k CostKind) String() string {
	switch k {
	case Cardinality:
		return "cardinality"
	case PlanCost:
		return "plan_cost"
	case ExecTimeMS:
		return "exec_time_ms"
	case RowsProcessed:
		return "rows_processed"
	}
	return fmt.Sprintf("CostKind(%d)", uint8(k))
}

// ExplainResult is the engine's answer to an EXPLAIN request.
type ExplainResult struct {
	Cardinality float64
	Cost        float64
	Plan        string
}

// DB is one opened database. All methods are safe for concurrent use; the
// underlying data is immutable after load.
type DB struct {
	store *storage.Database
	plans *planCache
	// sessions pools execution sessions for probe paths that do not manage
	// their own (Prepared.Cost on a measured kind): arenas survive across
	// borrowings instead of being rebuilt per probe.
	sessions sync.Pool

	// The evaluation counters are obs.Counters so an observability
	// collector can adopt them directly (BindObs): the exported db_*
	// metrics and the DB's own budget accounting are the same memory and
	// can never drift.
	explainCount  obs.Counter
	execCount     obs.Counter
	validateCount obs.Counter
	// preparedProbes counts cost probes served through compiled templates
	// (Prepared.Cost/CostBatch); preparedBatches counts CostBatch calls.
	// Probe schedules are seed-deterministic, so both are stable metrics.
	preparedProbes  obs.Counter
	preparedBatches obs.Counter
	// sessionsOpened counts NewSession calls (explicit plus pool misses) —
	// scheduling-dependent, exported volatile. sessionProbes counts measured
	// probes served through sessions — schedule-deterministic, stable.
	sessionsOpened obs.Counter
	sessionProbes  obs.Counter
}

// planCacheSize bounds the ad-hoc plan LRU's entry count; templates go
// through Prepare instead, so this only needs to absorb repeated
// validation/re-scoring SQL. planCacheMaxBytes additionally caps the cache's
// approximate memory footprint (see entryBytes).
const (
	planCacheSize     = 256
	planCacheMaxBytes = 4 << 20 // 4 MiB
)

// Open wraps a loaded storage database.
func Open(store *storage.Database) *DB {
	return &DB{store: store, plans: newPlanCache(planCacheSize, planCacheMaxBytes)}
}

// OpenTPCH opens the TPC-H-shaped evaluation database.
func OpenTPCH(seed int64, sf float64) *DB { return Open(datagen.TPCH(seed, sf)) }

// OpenIMDB opens the IMDB-shaped evaluation database.
func OpenIMDB(seed int64, sf float64) *DB { return Open(datagen.IMDB(seed, sf)) }

// OpenSnapshotFile loads a database previously saved with SaveSnapshot.
func OpenSnapshotFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store, err := storage.Load(f)
	if err != nil {
		return nil, err
	}
	return Open(store), nil
}

// SaveSnapshot persists the database (schema, statistics, rows) to a file.
func (db *DB) SaveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.store.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Schema returns the database schema.
func (db *DB) Schema() *catalog.Schema { return db.store.Schema }

// Store exposes the raw storage (used by tests and the SQL shell).
func (db *DB) Store() *storage.Database { return db.store }

// ExplainCalls reports how many Explain/Cost calls were served — the "number
// of DBMS evaluations" the benchmark harness budgets.
func (db *DB) ExplainCalls() int64 { return db.explainCount.Load() }

// ExecCalls reports how many Execute calls were served.
func (db *DB) ExecCalls() int64 { return db.execCount.Load() }

// ValidateCalls reports how many ValidateSyntax round-trips were served —
// the DBMS-check half of the Algorithm 1 budget that the static analyzer
// tries to avoid spending.
func (db *DB) ValidateCalls() int64 { return db.validateCount.Load() }

// PreparedProbes reports how many cost probes were served through compiled
// templates (lock-free on the estimate path). Deterministic for a given
// seed and configuration.
func (db *DB) PreparedProbes() int64 { return db.preparedProbes.Load() }

// PreparedBatches reports how many Prepared.CostBatch sweeps were served.
func (db *DB) PreparedBatches() int64 { return db.preparedBatches.Load() }

// SessionsOpened reports how many execution sessions were opened (explicit
// NewSession calls plus pool misses). Scheduling-dependent under parallelism.
func (db *DB) SessionsOpened() int64 { return db.sessionsOpened.Load() }

// SessionProbes reports how many measured-kind probes were served through
// execution sessions. Deterministic for a given seed and configuration.
func (db *DB) SessionProbes() int64 { return db.sessionProbes.Load() }

// ResetCounters zeroes the instrumentation counters.
func (db *DB) ResetCounters() {
	db.explainCount.Store(0)
	db.execCount.Store(0)
	db.validateCount.Store(0)
	db.preparedProbes.Store(0)
	db.preparedBatches.Store(0)
	db.sessionsOpened.Store(0)
	db.sessionProbes.Store(0)
	db.plans.hits.Store(0)
	db.plans.misses.Store(0)
}

// PlanCacheHits reports how many ad-hoc plan lookups were served from the
// LRU. Scheduling-dependent under parallelism (two workers may race on the
// same SQL), so obs binds it as volatile.
func (db *DB) PlanCacheHits() int64 { return db.plans.hits.Load() }

// PlanCacheMisses reports how many ad-hoc plan lookups had to parse+plan.
func (db *DB) PlanCacheMisses() int64 { return db.plans.misses.Load() }

// BindObs adopts the database's live counters into an observability binder
// under the canonical db_* metric names. Snapshots read the counters
// directly, so exported totals always equal ExplainCalls/ExecCalls/
// ValidateCalls exactly — one source, no drift. The plan-cache pair is
// bound volatile: cache hits legitimately depend on goroutine scheduling.
func (db *DB) BindObs(b obs.Binder) {
	b.BindCounter(obs.MDBExplainCalls, &db.explainCount, false)
	b.BindCounter(obs.MDBExecCalls, &db.execCount, false)
	b.BindCounter(obs.MDBValidateCalls, &db.validateCount, false)
	b.BindCounter(obs.MDBPlanCacheHits, &db.plans.hits, true)
	b.BindCounter(obs.MDBPlanCacheMisses, &db.plans.misses, true)
	b.BindCounter(obs.MDBPreparedProbes, &db.preparedProbes, false)
	b.BindCounter(obs.MDBPreparedBatches, &db.preparedBatches, false)
	b.BindCounter(obs.MDBSessionsOpened, &db.sessionsOpened, true)
	b.BindCounter(obs.MDBSessionProbes, &db.sessionProbes, false)
}

// planSQL parses and plans ad-hoc SQL, memoizing successful plans in a
// bounded LRU. Plans are immutable after Build and exec.Run keeps all
// per-run state in the executor, so one cached *plan.Query may serve
// concurrent Explain and Execute calls.
func (db *DB) planSQL(sql string) (*plan.Query, error) {
	if q, ok := db.plans.get(sql); ok {
		return q, nil
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	q, err := plan.Build(db.store.Schema, stmt)
	if err != nil {
		return nil, err
	}
	db.plans.put(sql, q)
	return q, nil
}

// Explain parses and plans the query, returning optimizer estimates without
// executing it — the engine's `EXPLAIN` statement.
func (db *DB) Explain(sql string) (*ExplainResult, error) {
	db.explainCount.Add(1)
	q, err := db.planSQL(sql)
	if err != nil {
		return nil, err
	}
	return &ExplainResult{
		Cardinality: q.EstimatedRows(),
		Cost:        q.TotalCost(),
		Plan:        q.Explain(),
	}, nil
}

// Execute runs the query and returns its result rows.
func (db *DB) Execute(sql string) (*exec.Result, error) {
	db.execCount.Add(1)
	q, err := db.planSQL(sql)
	if err != nil {
		return nil, err
	}
	return exec.Run(db.store, q)
}

// Cost returns the query's cost under the requested metric. Cardinality and
// PlanCost come from the optimizer (EXPLAIN); ExecTimeMS actually executes
// the query. A cancelled context aborts before any evaluation is counted.
func (db *DB) Cost(ctx context.Context, sql string, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	switch kind {
	case Cardinality, PlanCost:
		res, err := db.Explain(sql)
		if err != nil {
			return 0, err
		}
		if kind == Cardinality {
			return res.Cardinality, nil
		}
		return res.Cost, nil
	case ExecTimeMS:
		start := time.Now()
		if _, err := db.Execute(sql); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	case RowsProcessed:
		res, err := db.Execute(sql)
		if err != nil {
			return 0, err
		}
		return float64(res.RowsTouched), nil
	}
	return 0, fmt.Errorf("engine: unknown cost kind %v", kind)
}

// costOfPlan evaluates an already-planned query under the requested metric,
// incrementing the same evaluation counters Cost does: one explain per
// optimizer-estimated probe, one execute per measured probe. This is the
// shared tail of DB.Cost and Prepared.Cost, guaranteeing identical
// DBMS-evaluation accounting for prepared and re-parsed probes.
func (db *DB) costOfPlan(q *plan.Query, kind CostKind) (float64, error) {
	switch kind {
	case Cardinality:
		db.explainCount.Add(1)
		return q.EstimatedRows(), nil
	case PlanCost:
		db.explainCount.Add(1)
		return q.TotalCost(), nil
	case ExecTimeMS:
		db.execCount.Add(1)
		start := time.Now()
		if _, err := exec.Run(db.store, q); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	case RowsProcessed:
		db.execCount.Add(1)
		res, err := exec.Run(db.store, q)
		if err != nil {
			return 0, err
		}
		return float64(res.RowsTouched), nil
	}
	return 0, fmt.Errorf("engine: unknown cost kind %v", kind)
}

// ValidateSyntax checks that the SQL parses and binds against the schema,
// returning (true, "") on success or (false, message) with a DBMS-style
// error. This is the D.ValidateSyntax of Algorithm 1; template placeholders
// are permitted — they are substituted with neutral probe literals before
// planning.
func (db *DB) ValidateSyntax(sql string) (bool, string) {
	db.validateCount.Add(1)
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return false, err.Error()
	}
	// Substitute placeholders on the AST, never in the SQL text: a textual
	// rewrite cannot tell a placeholder token from a brace that happens to
	// sit inside a string literal, and corrupting such a literal flips the
	// verdict. The statement is freshly parsed and private to this call, so
	// rewriting it in place is safe.
	stmt.RewriteExprs(func(e sqlparser.Expr) sqlparser.Expr {
		if _, ok := e.(*sqlparser.Placeholder); ok {
			return &sqlparser.Literal{Value: sqltypes.NewInt(0)}
		}
		return e
	})
	if _, err := plan.Build(db.store.Schema, stmt); err != nil {
		return false, err.Error()
	}
	return true, ""
}
