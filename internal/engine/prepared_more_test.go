package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sqlbarber/internal/sqltypes"
)

// TestPreparedPartialBindingHasNoEffect is the regression test for the
// validate-first contract: a probe that fails placeholder validation must
// leave the prepared statement and the evaluation counters completely
// untouched, and must never poison a later probe with stale values. (The
// pre-compilation implementation assigned values into the AST's literal
// slots before checking for missing placeholders, so a failed probe could
// leave a half-written binding behind.)
func TestPreparedPartialBindingHasNoEffect(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	prep, err := db.Prepare("SELECT COUNT(*) FROM lineitem WHERE l_quantity >= {p_1} AND l_extendedprice < {p_2}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	full := map[string]sqltypes.Value{"p_1": sqltypes.NewInt(10), "p_2": sqltypes.NewFloat(5000)}
	want, err := prep.Cost(ctx, full, Cardinality)
	if err != nil {
		t.Fatalf("full probe: %v", err)
	}

	db.ResetCounters()
	partial := map[string]sqltypes.Value{"p_1": sqltypes.NewInt(999999)}
	for _, kind := range []CostKind{Cardinality, PlanCost, RowsProcessed} {
		if _, err := prep.Cost(ctx, partial, kind); err == nil || !strings.Contains(err.Error(), "p_2") {
			t.Fatalf("kind %v: want missing-placeholder error naming p_2, got %v", kind, err)
		}
	}
	if _, err := prep.CostReplan(ctx, partial, Cardinality); err == nil || !strings.Contains(err.Error(), "p_2") {
		t.Fatalf("CostReplan: want missing-placeholder error naming p_2, got %v", err)
	}
	if n := db.ExplainCalls() + db.ExecCalls() + db.PreparedProbes(); n != 0 {
		t.Fatalf("failed probes must not move evaluation counters, moved %d", n)
	}

	got, err := prep.Cost(ctx, full, Cardinality)
	if err != nil {
		t.Fatalf("probe after failed binding: %v", err)
	}
	if got != want {
		t.Fatalf("failed partial binding poisoned later probe: %v != %v", got, want)
	}
	replan, err := prep.CostReplan(ctx, full, Cardinality)
	if err != nil {
		t.Fatalf("CostReplan after failed binding: %v", err)
	}
	if replan != want {
		t.Fatalf("re-plan after failed binding diverged: %v != %v", replan, want)
	}
}

// TestPreparedCostBatchMatchesSingleProbes checks the batched sweep: same
// costs as one-at-a-time probing, one batch counter tick, one probe counter
// tick per binding, and identical explain accounting.
func TestPreparedCostBatchMatchesSingleProbes(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	prep, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_orderkey <= {p_1}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var sweep []map[string]sqltypes.Value
	var want []float64
	for i := 0; i < 17; i++ {
		vals := map[string]sqltypes.Value{"p_1": sqltypes.NewInt(int64(10 + 40*i))}
		c, err := prep.Cost(ctx, vals, Cardinality)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		sweep = append(sweep, vals)
		want = append(want, c)
	}

	db.ResetCounters()
	got, err := prep.CostBatch(ctx, sweep, Cardinality)
	if err != nil {
		t.Fatalf("CostBatch: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("CostBatch returned %d costs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batched cost %d diverged: %v != %v", i, got[i], want[i])
		}
	}
	if db.PreparedBatches() != 1 {
		t.Fatalf("want 1 batch counted, got %d", db.PreparedBatches())
	}
	if db.PreparedProbes() != int64(len(sweep)) {
		t.Fatalf("want %d probes counted, got %d", len(sweep), db.PreparedProbes())
	}
	if db.ExplainCalls() != int64(len(sweep)) {
		t.Fatalf("batched probes must count one explain each, got %d", db.ExplainCalls())
	}
}

// TestPreparedCostBatchPartialOnError checks the documented failure
// contract: costs computed before the failing binding are returned, probes
// after it are not attempted.
func TestPreparedCostBatchPartialOnError(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	prep, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_orderkey <= {p_1}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	sweep := []map[string]sqltypes.Value{
		{"p_1": sqltypes.NewInt(10)},
		{"p_1": sqltypes.NewInt(20)},
		{}, // missing p_1
		{"p_1": sqltypes.NewInt(30)},
	}
	db.ResetCounters()
	got, err := prep.CostBatch(ctx, sweep, Cardinality)
	if err == nil || !strings.Contains(err.Error(), "p_1") {
		t.Fatalf("want missing-placeholder error naming p_1, got %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 partial results before the failure, got %d", len(got))
	}
	if db.PreparedProbes() != 2 || db.ExplainCalls() != 2 {
		t.Fatalf("only attempted probes may count: probes=%d explains=%d",
			db.PreparedProbes(), db.ExplainCalls())
	}
}

// TestPreparedConcurrentProbes hammers one Prepared from 8 goroutines under
// the race detector: concurrent lock-free estimate probes (Cost and
// CostBatch) interleaved with measured probes that execute the skeleton under
// a per-session value environment. Every result must equal the
// single-threaded reference.
func TestPreparedConcurrentProbes(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	prep, err := db.Prepare("SELECT COUNT(*) FROM lineitem WHERE l_quantity >= {p_1} AND l_extendedprice < {p_2}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	const bindings = 16
	valsAt := func(i int) map[string]sqltypes.Value {
		return map[string]sqltypes.Value{
			"p_1": sqltypes.NewInt(int64(1 + i*3)),
			"p_2": sqltypes.NewFloat(float64(500 + i*700)),
		}
	}
	wantCard := make([]float64, bindings)
	wantRows := make([]float64, bindings)
	for i := 0; i < bindings; i++ {
		if wantCard[i], err = prep.Cost(ctx, valsAt(i), Cardinality); err != nil {
			t.Fatalf("reference cardinality %d: %v", i, err)
		}
		if wantRows[i], err = prep.Cost(ctx, valsAt(i), RowsProcessed); err != nil {
			t.Fatalf("reference rows %d: %v", i, err)
		}
	}

	const goroutines = 8
	const iters = 120
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fail := func(err error) { errs[g] = err }
			for it := 0; it < iters; it++ {
				i := (g + it) % bindings
				switch {
				case it%40 == 13:
					// Measured probe: executes lock-free through a pooled
					// session while estimate probes keep running.
					c, err := prep.Cost(ctx, valsAt(i), RowsProcessed)
					if err != nil {
						fail(err)
						return
					}
					if c != wantRows[i] {
						fail(fmt.Errorf("rows probe %d: %v != %v", i, c, wantRows[i]))
						return
					}
				case it%7 == 0:
					sweep := []map[string]sqltypes.Value{valsAt(i), valsAt((i + 1) % bindings)}
					cs, err := prep.CostBatch(ctx, sweep, Cardinality)
					if err != nil {
						fail(err)
						return
					}
					if cs[0] != wantCard[i] || cs[1] != wantCard[(i+1)%bindings] {
						fail(fmt.Errorf("batch probe %d diverged", i))
						return
					}
				default:
					c, err := prep.Cost(ctx, valsAt(i), Cardinality)
					if err != nil {
						fail(err)
						return
					}
					if c != wantCard[i] {
						fail(fmt.Errorf("estimate probe %d: %v != %v", i, c, wantCard[i]))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestPlanCacheByteCapEviction checks the memory bound: with a byte budget
// smaller than the entry budget allows, eviction is driven by approximate
// bytes, and the accounting shrinks when entries leave.
func TestPlanCacheByteCapEviction(t *testing.T) {
	sql := func(i int) string {
		return "SELECT COUNT(*) FROM orders WHERE o_orderkey <= " + itoa(i) + strings.Repeat(" ", 200)
	}
	per := entryBytes(sql(0))
	// Entry cap of 4 collapses to one shard; byte cap fits only 2 entries.
	c := newPlanCache(4, 2*per+per/2)
	for i := 0; i < 5; i++ {
		c.put(sql(i), nil)
	}
	if n := c.len(); n != 2 {
		t.Fatalf("byte cap should hold 2 entries, got %d", n)
	}
	if b := c.approxBytes(); b != 2*per {
		t.Fatalf("byte accounting drifted: %d != %d", b, 2*per)
	}
	// The newest entries survive, the oldest were evicted.
	if _, ok := c.get(sql(4)); !ok {
		t.Fatal("newest entry missing after byte-cap eviction")
	}
	if _, ok := c.get(sql(0)); ok {
		t.Fatal("oldest entry should have been evicted by the byte cap")
	}
}

// TestPlanCacheShardedBound checks that the sharded full-size cache still
// honors the global entry bound and serves hits.
func TestPlanCacheShardedBound(t *testing.T) {
	c := newPlanCache(planCacheSize, planCacheMaxBytes)
	if len(c.shards) != planCacheShardCount {
		t.Fatalf("full-size cache should shard %d ways, got %d", planCacheShardCount, len(c.shards))
	}
	for i := 0; i < planCacheSize+100; i++ {
		c.put("SELECT "+itoa(i), nil)
	}
	if n := c.len(); n > planCacheSize {
		t.Fatalf("sharded cache exceeded global bound: %d > %d", n, planCacheSize)
	}
	c.put("SELECT 1 FROM orders", nil)
	if _, ok := c.get("SELECT 1 FROM orders"); !ok {
		t.Fatal("sharded cache lost a fresh entry")
	}
}
