package engine

import (
	"context"
	"strings"
	"testing"
)

func testDB(t testing.TB) *DB {
	t.Helper()
	return OpenTPCH(42, 0.05) // lineitem=3000, orders=750
}

func TestExecuteSimpleFilter(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute("SELECT o_orderkey FROM orders WHERE o_orderkey <= 10")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
}

func TestExecuteJoinMatchesForeignKeys(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute(
		"SELECT c.c_name, o.o_orderkey FROM customer AS c JOIN orders AS o ON c.c_custkey = o.o_custkey WHERE o.o_orderkey <= 50")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("join produced %d rows, want 50 (every order has a customer)", len(res.Rows))
	}
}

func TestExecuteAggregation(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute("SELECT COUNT(*), SUM(o_totalprice), MIN(o_orderkey), MAX(o_orderkey) FROM orders")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	n := res.Rows[0][0].Int()
	if n != 750 {
		t.Fatalf("COUNT(*)=%d, want 750", n)
	}
	if res.Rows[0][2].Int() != 1 || res.Rows[0][3].Int() != 750 {
		t.Fatalf("MIN/MAX = %v/%v, want 1/750", res.Rows[0][2], res.Rows[0][3])
	}
}

func TestExecuteGroupByHaving(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute(
		"SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus HAVING COUNT(*) > 0 ORDER BY n DESC")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups, want 3 statuses", len(res.Rows))
	}
	total := int64(0)
	prev := int64(1 << 62)
	for _, r := range res.Rows {
		n := r[1].Int()
		total += n
		if n > prev {
			t.Fatalf("ORDER BY n DESC violated: %d after %d", n, prev)
		}
		prev = n
	}
	if total != 750 {
		t.Fatalf("group counts sum to %d, want 750", total)
	}
}

func TestExecuteInSubquery(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute(
		"SELECT COUNT(*) FROM orders WHERE o_custkey IN (SELECT c_custkey FROM customer WHERE c_custkey <= 5)")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	direct, err := db.Execute("SELECT COUNT(*) FROM orders WHERE o_custkey <= 5")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got, want := res.Rows[0][0].Int(), direct.Rows[0][0].Int(); got != want {
		t.Fatalf("IN-subquery count %d != direct count %d", got, want)
	}
}

func TestExecuteCorrelatedExists(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute(
		"SELECT COUNT(*) FROM customer AS c WHERE EXISTS (SELECT 1 FROM orders AS o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice > 100)")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	n := res.Rows[0][0].Int()
	if n <= 0 || n > 750 {
		t.Fatalf("EXISTS count %d out of plausible range", n)
	}
}

func TestExplainEstimates(t *testing.T) {
	db := testDB(t)
	all, err := db.Explain("SELECT * FROM lineitem")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if all.Cardinality < 2900 || all.Cardinality > 3100 {
		t.Fatalf("full-scan cardinality %.0f, want ~3000", all.Cardinality)
	}
	half, err := db.Explain("SELECT * FROM lineitem WHERE l_quantity <= 25")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if half.Cardinality >= all.Cardinality || half.Cardinality < all.Cardinality*0.25 {
		t.Fatalf("selective-scan cardinality %.0f vs %.0f: selectivity estimation broken", half.Cardinality, all.Cardinality)
	}
	if all.Cost <= 0 || half.Cost <= 0 {
		t.Fatalf("non-positive costs: %v %v", all.Cost, half.Cost)
	}
	if !strings.Contains(all.Plan, "Seq Scan") {
		t.Fatalf("plan text missing scan node:\n%s", all.Plan)
	}
}

func TestExplainCardinalityMonotoneInPredicate(t *testing.T) {
	db := testDB(t)
	prev := -1.0
	for _, q := range []string{
		"SELECT * FROM orders WHERE o_orderkey <= 10",
		"SELECT * FROM orders WHERE o_orderkey <= 100",
		"SELECT * FROM orders WHERE o_orderkey <= 400",
		"SELECT * FROM orders WHERE o_orderkey <= 750",
	} {
		res, err := db.Explain(q)
		if err != nil {
			t.Fatalf("explain %q: %v", q, err)
		}
		if res.Cardinality < prev {
			t.Fatalf("cardinality not monotone: %.1f after %.1f for %q", res.Cardinality, prev, q)
		}
		prev = res.Cardinality
	}
}

func TestValidateSyntax(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql string
		ok  bool
	}{
		{"SELECT o_orderkey FROM orders WHERE o_totalprice > {p_1}", true},
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN {p_1} AND {p_2}", true},
		// Placeholder substitution happens on the AST, so braces inside
		// string literals survive. A textual rewrite used to splice the span
		// between the two literals' braces into "0", turning this valid
		// statement into a parse error.
		{"SELECT COUNT(*) FROM orders WHERE o_orderstatus BETWEEN '{' AND '}'", true},
		// A placeholder-shaped token inside a string literal is data, not a
		// placeholder; it must reach the planner untouched.
		{"SELECT o_orderkey FROM orders WHERE o_orderstatus LIKE '%{p_1}%'", true},
		// Real placeholders and brace-bearing literals can coexist.
		{"SELECT o_orderkey FROM orders WHERE o_totalprice > {p_1} AND o_orderstatus <> '{'", true},
		{"SELECT nosuchcol FROM orders", false},
		{"SELECT o_orderkey FROM nosuchtable", false},
		{"SELECT FROM WHERE", false},
		{"SELECT o_orderkey FROM orders WHERE", false},
		{"SELECT o_orderkey, FROM orders", false},
	}
	for _, c := range cases {
		ok, msg := db.ValidateSyntax(c.sql)
		if ok != c.ok {
			t.Errorf("ValidateSyntax(%q) = %v (%s), want %v", c.sql, ok, msg, c.ok)
		}
		if !ok && msg == "" {
			t.Errorf("ValidateSyntax(%q) failed without a message", c.sql)
		}
	}
}

func TestCostKinds(t *testing.T) {
	db := testDB(t)
	sql := "SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000"
	card, err := db.Cost(context.Background(), sql, Cardinality)
	if err != nil {
		t.Fatalf("cardinality: %v", err)
	}
	if card != 1 {
		t.Fatalf("aggregate cardinality %v, want 1", card)
	}
	cost, err := db.Cost(context.Background(), sql, PlanCost)
	if err != nil || cost <= 0 {
		t.Fatalf("plan cost %v err %v", cost, err)
	}
	ms, err := db.Cost(context.Background(), sql, ExecTimeMS)
	if err != nil || ms < 0 {
		t.Fatalf("exec time %v err %v", ms, err)
	}
}

func TestCounters(t *testing.T) {
	db := testDB(t)
	db.ResetCounters()
	if _, err := db.Explain("SELECT * FROM orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("SELECT COUNT(*) FROM region"); err != nil {
		t.Fatal(err)
	}
	if db.ExplainCalls() != 1 || db.ExecCalls() != 1 {
		t.Fatalf("counters explain=%d exec=%d, want 1/1", db.ExplainCalls(), db.ExecCalls())
	}
}

func TestExecuteCaseExpression(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute(
		"SELECT CASE WHEN o_totalprice > 50000 THEN 'big' ELSE 'small' END AS bucket, COUNT(*) FROM orders GROUP BY bucket")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 2 {
		t.Fatalf("got %d buckets, want 1 or 2", len(res.Rows))
	}
}

func TestExecuteLeftJoin(t *testing.T) {
	db := testDB(t)
	// customers with zero orders should still appear with NULL order keys
	res, err := db.Execute(
		"SELECT c.c_custkey, o.o_orderkey FROM customer AS c LEFT JOIN orders AS o ON c.c_custkey = o.o_custkey")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	inner, err := db.Execute(
		"SELECT c.c_custkey FROM customer AS c JOIN orders AS o ON c.c_custkey = o.o_custkey")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) < len(inner.Rows) {
		t.Fatalf("left join rows %d < inner join rows %d", len(res.Rows), len(inner.Rows))
	}
	sawNull := false
	for _, r := range res.Rows {
		if r[1].IsNull() {
			sawNull = true
			break
		}
	}
	if !sawNull && len(res.Rows) == len(inner.Rows) {
		t.Log("every customer had an order; left-join null-extension not exercised at this scale")
	}
}
