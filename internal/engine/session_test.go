package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sqlbarber/internal/sqltypes"
)

// sessionTemplates are measured-probe shapes spanning the executor surface:
// plain scan+aggregate, hash join, and a correlated-subquery residual.
var sessionTemplates = []string{
	"SELECT COUNT(*) FROM lineitem WHERE l_quantity >= {p_1} AND l_extendedprice < {p_2}",
	"SELECT o.o_orderkey, COUNT(*) FROM orders AS o JOIN lineitem AS l ON o.o_orderkey = l.l_orderkey WHERE o.o_totalprice > {p_1} AND l.l_quantity <= {p_2} GROUP BY o.o_orderkey",
	"SELECT o_orderkey FROM orders WHERE o_totalprice > {p_1} AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_quantity > {p_2})",
}

func sessionVals(i int) map[string]sqltypes.Value {
	return map[string]sqltypes.Value{
		"p_1": sqltypes.NewInt(int64(1 + i*7%40)),
		"p_2": sqltypes.NewFloat(float64(10 + i*13%45)),
	}
}

// TestSessionCostMatchesReplan pins the value-environment execution path to
// the literal-materialized baseline: for every template and binding,
// Session.Cost(RowsProcessed) must equal CostReplan(RowsProcessed) exactly —
// same executor, one running the immutable skeleton under a value overlay
// with an arena, the other re-planning a value-substituted AST.
func TestSessionCostMatchesReplan(t *testing.T) {
	db := OpenTPCH(42, 0.02) // small: the correlated template is quadratic
	ctx := context.Background()
	sess := db.NewSession()
	for ti, text := range sessionTemplates {
		prep, err := db.Prepare(text)
		if err != nil {
			t.Fatalf("template %d: %v", ti, err)
		}
		for i := 0; i < 12; i++ {
			want, err := prep.CostReplan(ctx, sessionVals(i), RowsProcessed)
			if err != nil {
				t.Fatalf("template %d binding %d: replan: %v", ti, i, err)
			}
			got, err := sess.Cost(ctx, prep, sessionVals(i), RowsProcessed)
			if err != nil {
				t.Fatalf("template %d binding %d: session: %v", ti, i, err)
			}
			if got != want {
				t.Fatalf("template %d binding %d: session rows %v != replan %v", ti, i, got, want)
			}
		}
	}
}

// TestSessionConcurrentMixedProbes is the multi-session race hammer: 8
// goroutines, each with its own explicit Session, fire measured and estimate
// probes against one shared Prepared per template. There is no lock left on
// the measured path, so under -race this doubles as the proof that probe
// state never aliases across sessions; every observed cost must equal the
// single-threaded reference.
func TestSessionConcurrentMixedProbes(t *testing.T) {
	db := OpenTPCH(42, 0.02) // small: the correlated template is quadratic
	ctx := context.Background()
	const bindings = 12
	preps := make([]*Prepared, len(sessionTemplates))
	wantRows := make([][]float64, len(sessionTemplates))
	wantCard := make([][]float64, len(sessionTemplates))
	for ti, text := range sessionTemplates {
		prep, err := db.Prepare(text)
		if err != nil {
			t.Fatalf("template %d: %v", ti, err)
		}
		preps[ti] = prep
		wantRows[ti] = make([]float64, bindings)
		wantCard[ti] = make([]float64, bindings)
		for i := 0; i < bindings; i++ {
			if wantRows[ti][i], err = prep.CostReplan(ctx, sessionVals(i), RowsProcessed); err != nil {
				t.Fatalf("reference rows %d/%d: %v", ti, i, err)
			}
			if wantCard[ti][i], err = prep.Cost(ctx, sessionVals(i), Cardinality); err != nil {
				t.Fatalf("reference cardinality %d/%d: %v", ti, i, err)
			}
		}
	}

	const goroutines = 8
	const iters = 36
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := db.NewSession()
			for it := 0; it < iters; it++ {
				ti := (g + it) % len(preps)
				i := (g*5 + it) % bindings
				if it%4 == 3 {
					// Estimate probe through the same session.
					c, err := sess.Cost(ctx, preps[ti], sessionVals(i), Cardinality)
					if err != nil {
						errs[g] = err
						return
					}
					if c != wantCard[ti][i] {
						errs[g] = fmt.Errorf("estimate %d/%d: %v != %v", ti, i, c, wantCard[ti][i])
						return
					}
					continue
				}
				c, err := sess.Cost(ctx, preps[ti], sessionVals(i), RowsProcessed)
				if err != nil {
					errs[g] = err
					return
				}
				if c != wantRows[ti][i] {
					errs[g] = fmt.Errorf("measured %d/%d: %v != %v", ti, i, c, wantRows[ti][i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestCostBatchParallelDeterministic checks the fan-out sweep: identical cost
// vectors at parallelism 1, 2, and 8, equal to per-probe CostReplan, with
// counter movement that does not depend on the parallel level — one batch,
// one execute and one prepared/session probe per sweep entry.
func TestCostBatchParallelDeterministic(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	prep, err := db.Prepare(sessionTemplates[1])
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	sweep := make([]map[string]sqltypes.Value, n)
	want := make([]float64, n)
	for i := range sweep {
		sweep[i] = sessionVals(i)
		if want[i], err = prep.CostReplan(ctx, sweep[i], RowsProcessed); err != nil {
			t.Fatalf("replan %d: %v", i, err)
		}
	}
	for _, parallel := range []int{1, 2, 8} {
		batches0, probes0 := db.PreparedBatches(), db.PreparedProbes()
		execs0, sessProbes0 := db.ExecCalls(), db.SessionProbes()
		got, err := prep.CostBatchParallel(ctx, sweep, RowsProcessed, parallel)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d probe %d: %v != %v", parallel, i, got[i], want[i])
			}
		}
		if d := db.PreparedBatches() - batches0; d != 1 {
			t.Errorf("parallel=%d: batches moved %d, want 1", parallel, d)
		}
		if d := db.PreparedProbes() - probes0; d != n {
			t.Errorf("parallel=%d: prepared probes moved %d, want %d", parallel, d, n)
		}
		if d := db.ExecCalls() - execs0; d != n {
			t.Errorf("parallel=%d: exec calls moved %d, want %d", parallel, d, n)
		}
		if d := db.SessionProbes() - sessProbes0; d != n {
			t.Errorf("parallel=%d: session probes moved %d, want %d", parallel, d, n)
		}
	}
}

// TestCostBatchParallelValidatesFirst: an invalid binding anywhere in the
// sweep fails the whole sweep before any probe runs — no counter moves at
// all, matching the single-probe validate-first contract.
func TestCostBatchParallelValidatesFirst(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	prep, err := db.Prepare(sessionTemplates[0])
	if err != nil {
		t.Fatal(err)
	}
	sweep := []map[string]sqltypes.Value{
		sessionVals(0),
		{"p_1": sqltypes.NewInt(3)}, // p_2 missing
		sessionVals(1),
	}
	batches0, probes0, execs0 := db.PreparedBatches(), db.PreparedProbes(), db.ExecCalls()
	if _, err := prep.CostBatchParallel(ctx, sweep, RowsProcessed, 4); err == nil || !strings.Contains(err.Error(), "p_2") {
		t.Fatalf("want missing-placeholder error naming p_2, got %v", err)
	}
	if db.PreparedBatches() != batches0 || db.PreparedProbes() != probes0 || db.ExecCalls() != execs0 {
		t.Fatal("a sweep that fails validation must move no counters")
	}
}

// TestSessionWrongDB: a session refuses statements prepared on another
// database rather than silently executing against the wrong store.
func TestSessionWrongDB(t *testing.T) {
	db := testDB(t)
	other := OpenTPCH(7, 0.02)
	prep, err := other.Prepare(sessionTemplates[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewSession().Cost(context.Background(), prep, sessionVals(0), RowsProcessed); err == nil {
		t.Fatal("want cross-database session error, got nil")
	}
}
