package engine

import (
	"path/filepath"
	"testing"
)

func TestSnapshotSaveLoadPreservesEstimates(t *testing.T) {
	db := OpenTPCH(4, 0.05)
	path := filepath.Join(t.TempDir(), "tpch.snap")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM lineitem WHERE l_quantity > 25",
		"SELECT o_orderstatus, COUNT(*) FROM orders GROUP BY o_orderstatus",
		"SELECT l.l_orderkey FROM lineitem AS l JOIN orders AS o ON l.l_orderkey = o.o_orderkey WHERE o.o_totalprice > 1000",
	}
	for _, q := range queries {
		a, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Explain(q)
		if err != nil {
			t.Fatalf("loaded explain: %v", err)
		}
		if a.Cardinality != b.Cardinality || a.Cost != b.Cost {
			t.Fatalf("estimates drifted after snapshot: %v/%v vs %v/%v for %q",
				a.Cardinality, a.Cost, b.Cardinality, b.Cost, q)
		}
		ra, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := loaded.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("result sizes drifted: %d vs %d for %q", len(ra.Rows), len(rb.Rows), q)
		}
	}
	if loaded.Schema().Name != db.Schema().Name {
		t.Fatal("schema name lost")
	}
	if loaded.Store() == nil {
		t.Fatal("store accessor broken")
	}
}

func TestOpenSnapshotFileMissing(t *testing.T) {
	if _, err := OpenSnapshotFile("/nonexistent/path.snap"); err == nil {
		t.Fatal("missing snapshot must error")
	}
}
