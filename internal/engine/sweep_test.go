package engine_test

import (
	"context"
	"testing"

	"sqlbarber/internal/engine"
	"sqlbarber/internal/generator"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/profiler"
	"sqlbarber/internal/spec"
)

// TestGeneratedQueriesExecuteSweep is the repository's broad safety net: it
// sweeps seeds, datasets, and specification shapes, generates templates with
// a hallucination-free oracle, instantiates them at space-filling points,
// and EXECUTES every query (not just EXPLAIN). Any parser, planner,
// executor, or synthesizer regression that produces non-runnable SQL
// surfaces here.
func TestGeneratedQueriesExecuteSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	datasets := []struct {
		name string
		open func(int64) *engine.DB
	}{
		{"tpch", func(seed int64) *engine.DB { return engine.OpenTPCH(seed, 0.05) }},
		{"imdb", func(seed int64) *engine.DB { return engine.OpenIMDB(seed, 0.05) }},
	}
	specShapes := []spec.Spec{
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(1)},
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), NestedQuery: spec.Bool(true)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(1), GroupBy: spec.Bool(true), NumAggregations: spec.Int(2)},
		{NumJoins: spec.Int(2), NumPredicates: spec.Int(3)},
		{NumJoins: spec.Int(2), NumPredicates: spec.Int(2), NestedQuery: spec.Bool(true), GroupBy: spec.Bool(true)},
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(2), ComplexScalar: spec.Bool(true)},
	}
	executed := 0
	for _, ds := range datasets {
		for seed := int64(1); seed <= 3; seed++ {
			db := ds.open(seed)
			gen := generator.New(db, llm.NewSim(llm.Perfect(seed)), generator.Options{Seed: seed})
			prof := &profiler.Profiler{DB: db, Kind: engine.Cardinality, Seed: seed}
			for si, s := range specShapes {
				res, err := gen.Generate(context.Background(), s)
				if err != nil {
					t.Fatalf("%s seed %d spec %d: generate: %v", ds.name, seed, si, err)
				}
				if !res.Valid {
					t.Fatalf("%s seed %d spec %d: perfect oracle produced invalid template:\n%s",
						ds.name, seed, si, res.Template.SQL())
				}
				p, err := prof.Profile(context.Background(), res.Template, 6)
				if err != nil {
					t.Fatalf("%s seed %d spec %d: profile: %v\n%s", ds.name, seed, si, err, res.Template.SQL())
				}
				for _, obs := range p.Obs {
					if _, err := db.Execute(obs.SQL); err != nil {
						t.Fatalf("%s seed %d spec %d: execute: %v\n%s", ds.name, seed, si, err, obs.SQL)
					}
					executed++
				}
			}
		}
	}
	if executed < 200 {
		t.Fatalf("sweep executed only %d queries; expected at least 200", executed)
	}
	t.Logf("sweep executed %d generated queries across %d datasets", executed, len(datasets))
}
