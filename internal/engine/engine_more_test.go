package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestRowsProcessedCostKind(t *testing.T) {
	db := testDB(t)
	small, err := db.Cost(context.Background(), "SELECT * FROM region", RowsProcessed)
	if err != nil {
		t.Fatal(err)
	}
	if small != 5 {
		t.Fatalf("region scan rows processed = %v, want 5", small)
	}
	big, err := db.Cost(context.Background(), "SELECT * FROM lineitem", RowsProcessed)
	if err != nil {
		t.Fatal(err)
	}
	if big != 3000 {
		t.Fatalf("lineitem scan rows processed = %v, want 3000", big)
	}
	joined, err := db.Cost(context.Background(), "SELECT * FROM lineitem AS l JOIN orders AS o ON l.l_orderkey = o.o_orderkey", RowsProcessed)
	if err != nil {
		t.Fatal(err)
	}
	// scan 3000 + scan 750 + up to 3000 join outputs.
	if joined <= big {
		t.Fatalf("join rows processed %v must exceed scan %v", joined, big)
	}
}

func TestRowsProcessedMonotoneInSelectivity(t *testing.T) {
	db := testDB(t)
	// Scans touch all rows regardless of filters; a join's processed rows
	// shrink as the probe side shrinks.
	narrow, err := db.Cost(context.Background(), "SELECT * FROM lineitem AS l JOIN orders AS o ON l.l_orderkey = o.o_orderkey WHERE o.o_orderkey <= 10", RowsProcessed)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := db.Cost(context.Background(), "SELECT * FROM lineitem AS l JOIN orders AS o ON l.l_orderkey = o.o_orderkey WHERE o.o_orderkey <= 700", RowsProcessed)
	if err != nil {
		t.Fatal(err)
	}
	if narrow >= wide {
		t.Fatalf("rows processed not responsive to predicate: narrow=%v wide=%v", narrow, wide)
	}
}

func TestConcurrentExplainAndExecute(t *testing.T) {
	db := testDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				sql := fmt.Sprintf("SELECT COUNT(*) FROM orders WHERE o_orderkey <= %d", (g+1)*(i+1)*10)
				if _, err := db.Explain(sql); err != nil {
					errs <- err
					return
				}
				if _, err := db.Execute(sql); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent access: %v", err)
	}
	if db.ExplainCalls() != 64 || db.ExecCalls() != 64 {
		t.Fatalf("counters under concurrency: %d/%d", db.ExplainCalls(), db.ExecCalls())
	}
}

func TestCostKindStrings(t *testing.T) {
	cases := map[CostKind]string{
		Cardinality:   "cardinality",
		PlanCost:      "plan_cost",
		ExecTimeMS:    "exec_time_ms",
		RowsProcessed: "rows_processed",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}
