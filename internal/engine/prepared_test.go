package engine

import (
	"context"
	"strings"
	"testing"

	"sqlbarber/internal/sqltemplate"
	"sqlbarber/internal/sqltypes"
)

// TestPreparedCostMatchesReparse is the core equivalence guarantee of the
// prepared-template layer: for every cost kind and a value sweep covering
// negatives, floats, integral floats, and quoted strings, Prepared.Cost must
// return bit-identical costs to the re-parse path (Instantiate + DB.Cost).
func TestPreparedCostMatchesReparse(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	tmplSQL := "SELECT l_returnflag, SUM(l_extendedprice) FROM lineitem " +
		"WHERE l_quantity >= {p_1} AND l_extendedprice < {p_2} AND l_returnflag = {p_3} " +
		"GROUP BY l_returnflag"
	tmpl := sqltemplate.MustParse(tmplSQL)
	prep, err := db.Prepare(tmplSQL)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	sweeps := []map[string]sqltypes.Value{
		{"p_1": sqltypes.NewInt(10), "p_2": sqltypes.NewFloat(50000.5), "p_3": sqltypes.NewString("A")},
		{"p_1": sqltypes.NewInt(-5), "p_2": sqltypes.NewFloat(-1.25), "p_3": sqltypes.NewString("N")},
		{"p_1": sqltypes.NewFloat(25), "p_2": sqltypes.NewFloat(1e5), "p_3": sqltypes.NewString("R")},
		{"p_1": sqltypes.NewFloat(-3.75), "p_2": sqltypes.NewFloat(0.30000000000000004), "p_3": sqltypes.NewString("it''s")},
		{"p_1": sqltypes.NewInt(0), "p_2": sqltypes.NewFloat(5e6), "p_3": sqltypes.NewString("")},
	}
	kinds := []CostKind{Cardinality, PlanCost, RowsProcessed}
	for i, vals := range sweeps {
		sql, err := tmpl.Instantiate(vals)
		if err != nil {
			t.Fatalf("sweep %d: instantiate: %v", i, err)
		}
		for _, kind := range kinds {
			want, err := db.Cost(ctx, sql, kind)
			if err != nil {
				t.Fatalf("sweep %d %v: reparse cost: %v", i, kind, err)
			}
			got, err := prep.Cost(ctx, vals, kind)
			if err != nil {
				t.Fatalf("sweep %d %v: prepared cost: %v", i, kind, err)
			}
			if got != want {
				t.Fatalf("sweep %d %v: prepared cost %v != reparse cost %v (sql %q)", i, kind, got, want, sql)
			}
		}
	}
}

// TestPreparedCountsEvaluationsLikeCost checks call parity: a prepared probe
// increments exactly the counters a re-parse probe would, and Prepare itself
// increments none.
func TestPreparedCountsEvaluationsLikeCost(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	db.ResetCounters()
	prep, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_orderkey <= {p_1}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if db.ExplainCalls() != 0 || db.ExecCalls() != 0 {
		t.Fatalf("Prepare must not count evaluations, got explain=%d exec=%d", db.ExplainCalls(), db.ExecCalls())
	}
	vals := map[string]sqltypes.Value{"p_1": sqltypes.NewInt(100)}
	if _, err := prep.Cost(ctx, vals, Cardinality); err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Cost(ctx, vals, PlanCost); err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Cost(ctx, vals, RowsProcessed); err != nil {
		t.Fatal(err)
	}
	if db.ExplainCalls() != 2 || db.ExecCalls() != 1 {
		t.Fatalf("prepared counter parity broken: explain=%d exec=%d, want 2/1", db.ExplainCalls(), db.ExecCalls())
	}
}

func TestPreparedMissingValue(t *testing.T) {
	db := testDB(t)
	prep, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_orderkey <= {p_1}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	_, err = prep.Cost(context.Background(), map[string]sqltypes.Value{}, Cardinality)
	if err == nil || !strings.Contains(err.Error(), "p_1") {
		t.Fatalf("want missing-placeholder error naming p_1, got %v", err)
	}
}

func TestPreparedRejectsBadTemplate(t *testing.T) {
	db := testDB(t)
	if _, err := db.Prepare("SELECT nope FROM orders"); err == nil {
		t.Fatal("Prepare must surface binding errors at prepare time")
	}
	if _, err := db.Prepare("SELEC 1"); err == nil {
		t.Fatal("Prepare must surface parse errors")
	}
}

func TestPreparedCancelledContext(t *testing.T) {
	db := testDB(t)
	prep, err := db.Prepare("SELECT COUNT(*) FROM orders WHERE o_orderkey <= {p_1}")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db.ResetCounters()
	if _, err := prep.Cost(ctx, map[string]sqltypes.Value{"p_1": sqltypes.NewInt(1)}, Cardinality); err == nil {
		t.Fatal("prepared cost must honor a cancelled context")
	}
	if _, err := db.Cost(ctx, "SELECT 1", Cardinality); err == nil {
		t.Fatal("Cost must honor a cancelled context")
	}
	if db.ExplainCalls() != 0 {
		t.Fatalf("cancelled probes must not count as evaluations, got %d", db.ExplainCalls())
	}
}

// TestPlanCacheBoundedAndHit checks the ad-hoc LRU: repeated SQL is served
// from cache (same plan, counters still advance) and the cache never exceeds
// its bound.
func TestPlanCacheBoundedAndHit(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	sql := "SELECT COUNT(*) FROM orders WHERE o_orderkey <= 100"
	a, err := db.Cost(ctx, sql, Cardinality)
	if err != nil {
		t.Fatal(err)
	}
	if db.plans.len() != 1 {
		t.Fatalf("expected 1 cached plan, got %d", db.plans.len())
	}
	b, err := db.Cost(ctx, sql, Cardinality)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cached plan cost %v != first cost %v", b, a)
	}
	if db.ExplainCalls() != 2 {
		t.Fatalf("cache hits must still count evaluations, got %d", db.ExplainCalls())
	}
	for i := 0; i < planCacheSize+50; i++ {
		q := "SELECT COUNT(*) FROM orders WHERE o_orderkey <= " + itoa(i)
		if _, err := db.Cost(ctx, q, Cardinality); err != nil {
			t.Fatal(err)
		}
	}
	if db.plans.len() > planCacheSize {
		t.Fatalf("plan cache exceeded bound: %d > %d", db.plans.len(), planCacheSize)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
