package engine

import (
	"context"
	"fmt"
	"time"

	"sqlbarber/internal/exec"
	"sqlbarber/internal/sqltypes"
)

// Session is a per-goroutine execution context for measured-kind probes
// (ExecTimeMS, RowsProcessed). It owns the executor scratch arena — row
// windows, join hash tables — that a probe needs, so any number of sessions
// may execute probes against one Prepared concurrently: the probe's values
// travel in an immutable bound view (plan.BindParams), the compiled AST is
// never written, and nothing is locked. A Session is single-goroutine state;
// open one per worker (or let Prepared.Cost borrow one from the DB's pool).
type Session struct {
	db    *DB
	arena exec.Arena
}

// NewSession opens an execution session against the database.
func (db *DB) NewSession() *Session {
	db.sessionsOpened.Add(1)
	return &Session{db: db}
}

// getSession borrows a pooled session for a single probe or sweep range.
func (db *DB) getSession() *Session {
	if s, ok := db.sessions.Get().(*Session); ok {
		return s
	}
	return db.NewSession()
}

// putSession returns a borrowed session to the pool.
func (db *DB) putSession(s *Session) {
	db.sessions.Put(s)
}

// Cost evaluates a prepared template at the given placeholder values in this
// session. Semantics and counter movement are identical to Prepared.Cost —
// estimate kinds never need the session and go straight through the compiled
// evaluator — but measured kinds reuse this session's arena across calls and
// run lock-free.
func (s *Session) Cost(ctx context.Context, p *Prepared, vals map[string]sqltypes.Value, kind CostKind) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if p.db != s.db {
		return 0, fmt.Errorf("engine: session cost: prepared statement belongs to a different database")
	}
	params, err := p.cq.BindVals(vals)
	if err != nil {
		return 0, fmt.Errorf("engine: prepared cost: %w", err)
	}
	return s.costParams(p, params, kind)
}

// costParams serves one validated probe inside the session.
func (s *Session) costParams(p *Prepared, params []sqltypes.Value, kind CostKind) (float64, error) {
	switch kind {
	case Cardinality, PlanCost:
		s.db.explainCount.Add(1)
		s.db.preparedProbes.Add(1)
		est := p.cq.EstimateWith(params)
		if kind == Cardinality {
			return est.Rows, nil
		}
		return est.Cost, nil
	default:
		return s.execParams(p, params, kind)
	}
}

// execParams runs one measured probe: bind the parameter vector as an
// immutable value environment over the compiled skeleton and execute it with
// this session's arena. Counter movement mirrors the re-plan path exactly —
// one execute per attempt, one prepared probe per success — plus the
// session-probe count.
func (s *Session) execParams(p *Prepared, params []sqltypes.Value, kind CostKind) (float64, error) {
	bp := p.cq.BindParams(params)
	s.db.execCount.Add(1)
	s.arena.Reset()
	var cost float64
	switch kind {
	case ExecTimeMS:
		start := time.Now()
		if _, err := exec.RunBoundArena(s.db.store, bp, &s.arena); err != nil {
			return 0, err
		}
		cost = float64(time.Since(start).Microseconds()) / 1000
	case RowsProcessed:
		res, err := exec.RunBoundArena(s.db.store, bp, &s.arena)
		if err != nil {
			return 0, err
		}
		cost = float64(res.RowsTouched)
	default:
		return 0, fmt.Errorf("engine: unknown cost kind %v", kind)
	}
	s.db.preparedProbes.Add(1)
	s.db.sessionProbes.Add(1)
	return cost, nil
}
