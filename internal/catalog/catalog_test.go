package catalog

import (
	"strings"
	"testing"

	"sqlbarber/internal/sqltypes"
)

func testSchema() *Schema {
	return &Schema{
		Name: "shop",
		Tables: []*Table{
			{
				Name: "users", PrimaryKey: "user_id", RowCount: 1000,
				Columns: []Column{
					{Name: "user_id", Type: TypeInt, Indexed: true},
					{Name: "user_name", Type: TypeString},
					{Name: "age", Type: TypeInt},
				},
			},
			{
				Name: "orders", PrimaryKey: "order_id", RowCount: 5000,
				ForeignKeys: []ForeignKey{{Column: "user_id", RefTable: "users", RefColumn: "user_id"}},
				Columns: []Column{
					{Name: "order_id", Type: TypeInt, Indexed: true},
					{Name: "user_id", Type: TypeInt, Indexed: true},
					{Name: "order_amount", Type: TypeFloat},
				},
			},
			{
				Name: "items", PrimaryKey: "item_id", RowCount: 20000,
				ForeignKeys: []ForeignKey{{Column: "order_id", RefTable: "orders", RefColumn: "order_id"}},
				Columns: []Column{
					{Name: "item_id", Type: TypeInt, Indexed: true},
					{Name: "order_id", Type: TypeInt, Indexed: true},
					{Name: "price", Type: TypeFloat},
				},
			},
		},
	}
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	s := testSchema()
	if s.Table("ORDERS") == nil || s.Table("Orders") == nil {
		t.Fatal("table lookup must be case-insensitive")
	}
	if s.Table("nope") != nil {
		t.Fatal("unknown table must return nil")
	}
	tbl := s.Table("users")
	if tbl.Column("USER_NAME") == nil {
		t.Fatal("column lookup must be case-insensitive")
	}
	if tbl.ColumnIndex("age") != 2 {
		t.Fatalf("ColumnIndex(age) = %d", tbl.ColumnIndex("age"))
	}
	if tbl.ColumnIndex("ghost") != -1 {
		t.Fatal("missing column index must be -1")
	}
}

func TestNumericColumns(t *testing.T) {
	got := testSchema().Table("users").NumericColumns()
	if len(got) != 2 || got[0] != "user_id" || got[1] != "age" {
		t.Fatalf("NumericColumns = %v", got)
	}
}

func TestJoinEdges(t *testing.T) {
	edges := testSchema().JoinEdges()
	if len(edges) != 2 {
		t.Fatalf("got %d edges, want 2", len(edges))
	}
	if edges[0].String() != "orders.user_id = users.user_id" {
		t.Errorf("edge rendering: %s", edges[0])
	}
}

func TestJoinPathsZeroJoins(t *testing.T) {
	paths := testSchema().JoinPaths(0, 0)
	if len(paths) != 3 {
		t.Fatalf("0-join paths = %d, want 3 (one per table)", len(paths))
	}
	for _, p := range paths {
		if len(p.Tables) != 1 || len(p.Edges) != 0 {
			t.Fatalf("bad 0-join path: %+v", p)
		}
	}
}

func TestJoinPathsOneJoin(t *testing.T) {
	paths := testSchema().JoinPaths(1, 0)
	// users-orders and orders-items (each direction deduped).
	if len(paths) != 2 {
		t.Fatalf("1-join paths = %d, want 2: %+v", len(paths), paths)
	}
	for _, p := range paths {
		if len(p.Tables) != 2 || len(p.Edges) != 1 {
			t.Fatalf("bad path shape: %+v", p)
		}
	}
}

func TestJoinPathsTwoJoins(t *testing.T) {
	paths := testSchema().JoinPaths(2, 0)
	if len(paths) != 1 {
		t.Fatalf("2-join paths = %d, want 1 (users-orders-items)", len(paths))
	}
	p := paths[0]
	if len(p.Tables) != 3 {
		t.Fatalf("path tables: %v", p.Tables)
	}
	// Edges must chain: edge i connects Tables[i] to Tables[i+1].
	for i, e := range p.Edges {
		if !strings.EqualFold(e.LeftTable, p.Tables[i]) || !strings.EqualFold(e.RightTable, p.Tables[i+1]) {
			t.Fatalf("edge %d does not chain: %+v over %v", i, e, p.Tables)
		}
	}
}

func TestJoinPathsNoSuchLength(t *testing.T) {
	if got := testSchema().JoinPaths(5, 0); len(got) != 0 {
		t.Fatalf("impossible join count returned %d paths", len(got))
	}
}

func TestJoinPathsLimit(t *testing.T) {
	if got := testSchema().JoinPaths(1, 1); len(got) != 1 {
		t.Fatalf("limit not applied: %d", len(got))
	}
}

func TestSummaryContent(t *testing.T) {
	s := testSchema()
	s.Tables[0].Columns[0].Stats = ColumnStats{
		Min: sqltypes.NewInt(1), Max: sqltypes.NewInt(1000), NDistinct: 1000,
	}
	sum := s.Summary(nil)
	for _, want := range []string{"TABLE users", "TABLE orders", "PRIMARY KEY (user_id)",
		"FOREIGN KEY (user_id) REFERENCES users(user_id)", "ndistinct=1000", "min=1 max=1000", "indexed"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	only := s.Summary([]string{"users"})
	if strings.Contains(only, "TABLE orders") {
		t.Error("filtered summary must exclude other tables")
	}
}

func TestColumnTypeKind(t *testing.T) {
	if TypeInt.Kind() != sqltypes.KindInt || TypeFloat.Kind() != sqltypes.KindFloat || TypeString.Kind() != sqltypes.KindString {
		t.Fatal("ColumnType.Kind mapping broken")
	}
	if TypeInt.String() != "INTEGER" || TypeString.String() != "TEXT" {
		t.Fatal("ColumnType.String mapping broken")
	}
}
