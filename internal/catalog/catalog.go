// Package catalog models database metadata: tables, columns, primary and
// foreign keys, indexes, and per-column statistics. The planner's selectivity
// estimation, the template generator's schema summary, and the BO search
// space all read from here.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"sqlbarber/internal/sqltypes"
)

// ColumnType is the declared type of a column.
type ColumnType uint8

// Supported column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
)

// String returns the SQL name of the column type.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "TEXT"
	}
	return fmt.Sprintf("ColumnType(%d)", uint8(t))
}

// Kind maps the column type to its runtime value kind.
func (t ColumnType) Kind() sqltypes.Kind {
	switch t {
	case TypeInt:
		return sqltypes.KindInt
	case TypeFloat:
		return sqltypes.KindFloat
	default:
		return sqltypes.KindString
	}
}

// ColumnStats holds optimizer statistics for one column, refreshed by
// storage.Table.Analyze.
type ColumnStats struct {
	// Min and Max bound the column's values (numeric columns only; for
	// strings they are the lexicographic extremes).
	Min, Max sqltypes.Value
	// NDistinct is the number of distinct non-null values.
	NDistinct int
	// NullFrac is the fraction of NULL values.
	NullFrac float64
	// MostCommon lists up to a few frequent values with their frequencies
	// (fraction of rows), used for equality selectivity on skewed columns.
	MostCommon []ValueFreq
	// Histogram holds equi-depth bucket boundaries over non-null values of
	// numeric columns; nil for strings or tiny tables.
	Histogram []float64
}

// ValueFreq pairs a value with its relative frequency.
type ValueFreq struct {
	Value sqltypes.Value
	Freq  float64
}

// Column describes one table column.
type Column struct {
	Name    string
	Type    ColumnType
	Stats   ColumnStats
	Indexed bool // true when a (simulated) secondary index exists
}

// ForeignKey links a column of this table to the primary key of another.
type ForeignKey struct {
	Column    string // local column name
	RefTable  string
	RefColumn string
}

// Table describes one table's schema and table-level statistics.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  string // name of the PK column ("" if none)
	ForeignKeys []ForeignKey
	RowCount    int
	// SizeBytes is an approximate on-disk size used in the schema summary.
	SizeBytes int64
}

// Column returns the named column, or nil if absent. Lookup is
// case-insensitive, matching the engine's identifier rules.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return &t.Columns[i]
		}
	}
	return nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// NumericColumns returns the names of all int/float columns.
func (t *Table) NumericColumns() []string {
	var out []string
	for _, c := range t.Columns {
		if c.Type == TypeInt || c.Type == TypeFloat {
			out = append(out, c.Name)
		}
	}
	return out
}

// Schema is a set of tables forming one database schema.
type Schema struct {
	Name   string
	Tables []*Table
}

// Table returns the named table, or nil. Case-insensitive.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

// TableNames returns all table names in declaration order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.Tables))
	for i, t := range s.Tables {
		out[i] = t.Name
	}
	return out
}

// JoinEdge is one joinable column pair derived from a foreign key.
type JoinEdge struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// String renders the edge as "a.x = b.y".
func (e JoinEdge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.LeftTable, e.LeftColumn, e.RightTable, e.RightColumn)
}

// JoinEdges enumerates all FK-implied join edges in the schema.
func (s *Schema) JoinEdges() []JoinEdge {
	var edges []JoinEdge
	for _, t := range s.Tables {
		for _, fk := range t.ForeignKeys {
			edges = append(edges, JoinEdge{
				LeftTable: t.Name, LeftColumn: fk.Column,
				RightTable: fk.RefTable, RightColumn: fk.RefColumn,
			})
		}
	}
	return edges
}

// JoinPath is an ordered walk through the join graph: Tables has one more
// element than Edges, and Edges[i] connects a table already on the path to
// Tables[i+1].
type JoinPath struct {
	Tables []string
	Edges  []JoinEdge
}

// JoinPaths enumerates simple paths in the FK join graph with exactly
// numJoins edges (hence numJoins+1 tables). The result is deterministic
// (sorted by the path's table sequence) and capped at limit entries
// (limit <= 0 means no cap).
func (s *Schema) JoinPaths(numJoins, limit int) []JoinPath {
	if numJoins == 0 {
		var out []JoinPath
		for _, t := range s.Tables {
			out = append(out, JoinPath{Tables: []string{t.Name}})
		}
		return out
	}
	adj := map[string][]JoinEdge{}
	for _, e := range s.JoinEdges() {
		adj[strings.ToLower(e.LeftTable)] = append(adj[strings.ToLower(e.LeftTable)], e)
		rev := JoinEdge{LeftTable: e.RightTable, LeftColumn: e.RightColumn,
			RightTable: e.LeftTable, RightColumn: e.LeftColumn}
		adj[strings.ToLower(e.RightTable)] = append(adj[strings.ToLower(e.RightTable)], rev)
	}
	var out []JoinPath
	var walk func(path JoinPath, seen map[string]bool)
	walk = func(path JoinPath, seen map[string]bool) {
		if limit > 0 && len(out) >= limit*4 {
			return
		}
		if len(path.Edges) == numJoins {
			cp := JoinPath{Tables: append([]string(nil), path.Tables...),
				Edges: append([]JoinEdge(nil), path.Edges...)}
			out = append(out, cp)
			return
		}
		last := path.Tables[len(path.Tables)-1]
		for _, e := range adj[strings.ToLower(last)] {
			if seen[strings.ToLower(e.RightTable)] {
				continue
			}
			seen[strings.ToLower(e.RightTable)] = true
			path.Tables = append(path.Tables, e.RightTable)
			path.Edges = append(path.Edges, e)
			walk(path, seen)
			path.Tables = path.Tables[:len(path.Tables)-1]
			path.Edges = path.Edges[:len(path.Edges)-1]
			delete(seen, strings.ToLower(e.RightTable))
		}
	}
	for _, t := range s.Tables {
		walk(JoinPath{Tables: []string{t.Name}}, map[string]bool{strings.ToLower(t.Name): true})
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Tables, ",") < strings.Join(out[j].Tables, ",")
	})
	// Drop reversed duplicates (a-b vs b-a) keeping the lexicographically
	// smaller orientation.
	var dedup []JoinPath
	seen := map[string]bool{}
	for _, p := range out {
		fwd := strings.Join(p.Tables, ",")
		rev := strings.Join(reverse(p.Tables), ",")
		if seen[fwd] || seen[rev] {
			continue
		}
		seen[fwd] = true
		dedup = append(dedup, p)
	}
	if limit > 0 && len(dedup) > limit {
		dedup = dedup[:limit]
	}
	return dedup
}

func reverse(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// Summary produces the textual database schema summary of §4 Step 1:
// table-level (names, sizes, tuple counts), column-level (names, types,
// distinct counts), and constraint-level (PK/FK, indexes) metadata. Setting
// only restricts output to the named tables (nil means all).
func (s *Schema) Summary(only []string) string {
	include := func(name string) bool {
		if only == nil {
			return true
		}
		for _, n := range only {
			if strings.EqualFold(n, name) {
				return true
			}
		}
		return false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Database %q schema summary:\n", s.Name)
	for _, t := range s.Tables {
		if !include(t.Name) {
			continue
		}
		fmt.Fprintf(&b, "TABLE %s (%d rows, ~%d KB)", t.Name, t.RowCount, t.SizeBytes/1024)
		if t.PrimaryKey != "" {
			fmt.Fprintf(&b, " PRIMARY KEY (%s)", t.PrimaryKey)
		}
		b.WriteByte('\n')
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "  %s %s ndistinct=%d", c.Name, c.Type, c.Stats.NDistinct)
			if c.Stats.Min.Kind() != sqltypes.KindNull {
				fmt.Fprintf(&b, " min=%s max=%s", c.Stats.Min, c.Stats.Max)
			}
			if c.Indexed {
				b.WriteString(" indexed")
			}
			b.WriteByte('\n')
		}
		for _, fk := range t.ForeignKeys {
			fmt.Fprintf(&b, "  FOREIGN KEY (%s) REFERENCES %s(%s)\n", fk.Column, fk.RefTable, fk.RefColumn)
		}
	}
	return b.String()
}
