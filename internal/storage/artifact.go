package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrBadArtifactName rejects names that could escape the store directory or
// collide with the writer's temp files.
var ErrBadArtifactName = errors.New("storage: bad artifact name")

// ErrArtifactNotFound reports a missing artifact on read.
var ErrArtifactNotFound = errors.New("storage: artifact not found")

// ArtifactStore is a flat on-disk store for completed (or partial) workload
// artifacts produced by the job service. Writes use the same atomic
// temp+rename idiom as PromptCache.Put, so readers — concurrent HTTP
// downloads, a restarted daemon scanning the directory — only ever see
// complete files: an artifact either exists in full or not at all.
type ArtifactStore struct{ dir string }

// OpenArtifactStore creates dir if needed and returns a store rooted there.
func OpenArtifactStore(dir string) (*ArtifactStore, error) {
	if dir == "" {
		return nil, errors.New("storage: artifact store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: artifact store: %w", err)
	}
	return &ArtifactStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *ArtifactStore) Dir() string { return s.dir }

// validArtifactName accepts flat file names only: no separators, no parent
// references, no hidden/temp prefixes.
func validArtifactName(name string) bool {
	if name == "" || len(name) > 255 {
		return false
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return false
	}
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "put-") {
		return false
	}
	return true
}

func (s *ArtifactStore) path(name string) string { return filepath.Join(s.dir, name) }

// Put streams write's output into the named artifact atomically: the bytes
// land in a temp file in the same directory and are renamed into place only
// after write returns and the file is durably closed. A failed write leaves
// no artifact (and removes the temp file), so a partially written artifact
// can never be observed under its final name.
func (s *ArtifactStore) Put(name string, write func(io.Writer) error) error {
	if !validArtifactName(name) {
		return fmt.Errorf("%w: %q", ErrBadArtifactName, name)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("storage: artifact put: %w", err)
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: artifact put %q: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: artifact put %q: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: artifact put %q: %w", name, err)
	}
	return nil
}

// Get returns the named artifact's bytes, or ErrArtifactNotFound.
func (s *ArtifactStore) Get(name string) ([]byte, error) {
	if !validArtifactName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadArtifactName, name)
	}
	data, err := os.ReadFile(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrArtifactNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: artifact get %q: %w", name, err)
	}
	return data, nil
}

// Open returns a reader over the named artifact, or ErrArtifactNotFound.
// The caller closes it.
func (s *ArtifactStore) Open(name string) (io.ReadCloser, error) {
	if !validArtifactName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadArtifactName, name)
	}
	f, err := os.Open(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrArtifactNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: artifact open %q: %w", name, err)
	}
	return f, nil
}

// List returns the stored artifact names, sorted. In-flight temp files are
// invisible: only renamed (complete) artifacts are listed.
func (s *ArtifactStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: artifact list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !validArtifactName(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}
