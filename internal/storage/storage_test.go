package storage

import (
	"testing"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/sqltypes"
)

func buildDB(t *testing.T) *Database {
	t.Helper()
	schema := &catalog.Schema{
		Name: "t",
		Tables: []*catalog.Table{{
			Name: "data",
			Columns: []catalog.Column{
				{Name: "id", Type: catalog.TypeInt},
				{Name: "grp", Type: catalog.TypeString},
				{Name: "val", Type: catalog.TypeFloat},
			},
		}},
	}
	db := NewDatabase(schema)
	tbl := db.Table("data")
	for i := 0; i < 100; i++ {
		grp := "a"
		if i%10 == 0 {
			grp = "hot" // 10% frequency -> must show in MCVs
		}
		val := sqltypes.NewFloat(float64(i))
		if i == 99 {
			val = sqltypes.Null
		}
		tbl.Append(Row{sqltypes.NewInt(int64(i + 1)), sqltypes.NewString(grp), val})
	}
	db.Analyze()
	return db
}

func TestAnalyzeRowCountAndSize(t *testing.T) {
	db := buildDB(t)
	meta := db.Schema.Table("data")
	if meta.RowCount != 100 {
		t.Fatalf("RowCount = %d", meta.RowCount)
	}
	if meta.SizeBytes <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestAnalyzeColumnStats(t *testing.T) {
	db := buildDB(t)
	id := db.Schema.Table("data").Column("id")
	if id.Stats.NDistinct != 100 {
		t.Fatalf("id ndistinct = %d", id.Stats.NDistinct)
	}
	if id.Stats.Min.Int() != 1 || id.Stats.Max.Int() != 100 {
		t.Fatalf("id min/max = %v/%v", id.Stats.Min, id.Stats.Max)
	}
	if len(id.Stats.Histogram) == 0 {
		t.Fatal("id should have a histogram (100 values > 32 buckets)")
	}
	if id.Stats.Histogram[0] != 1 || id.Stats.Histogram[len(id.Stats.Histogram)-1] != 100 {
		t.Fatalf("histogram bounds: %v", id.Stats.Histogram)
	}
}

func TestAnalyzeNullFraction(t *testing.T) {
	db := buildDB(t)
	val := db.Schema.Table("data").Column("val")
	if val.Stats.NullFrac != 0.01 {
		t.Fatalf("val nullfrac = %v, want 0.01", val.Stats.NullFrac)
	}
	if val.Stats.NDistinct != 99 {
		t.Fatalf("val ndistinct = %d (nulls must not count)", val.Stats.NDistinct)
	}
}

func TestAnalyzeMostCommonValues(t *testing.T) {
	db := buildDB(t)
	grp := db.Schema.Table("data").Column("grp")
	if len(grp.Stats.MostCommon) == 0 {
		t.Fatal("grp must have MCVs")
	}
	top := grp.Stats.MostCommon[0]
	if top.Value.Str() != "a" || top.Freq != 0.9 {
		t.Fatalf("top MCV = %v freq %v, want a/0.9", top.Value, top.Freq)
	}
	found := false
	for _, mv := range grp.Stats.MostCommon {
		if mv.Value.Str() == "hot" && mv.Freq == 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot value missing from MCVs: %+v", grp.Stats.MostCommon)
	}
}

func TestAppendArityPanics(t *testing.T) {
	db := buildDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("appending a short row must panic")
		}
	}()
	db.Table("data").Append(Row{sqltypes.NewInt(1)})
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	db := buildDB(t)
	if db.Table("DATA") == nil || db.Table("Data") == nil {
		t.Fatal("storage table lookup must be case-insensitive")
	}
	if db.Table("nope") != nil {
		t.Fatal("unknown table must be nil")
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	schema := &catalog.Schema{Name: "e", Tables: []*catalog.Table{{
		Name:    "empty",
		Columns: []catalog.Column{{Name: "x", Type: catalog.TypeInt}},
	}}}
	db := NewDatabase(schema)
	db.Analyze()
	meta := db.Schema.Table("empty")
	if meta.RowCount != 0 {
		t.Fatal("empty table rowcount")
	}
	if meta.Columns[0].Stats.NDistinct != 0 {
		t.Fatal("empty table stats must be zero")
	}
}
