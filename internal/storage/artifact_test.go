package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestArtifactStoreRoundTrip(t *testing.T) {
	s, err := OpenArtifactStore(filepath.Join(t.TempDir(), "artifacts"))
	if err != nil {
		t.Fatalf("OpenArtifactStore: %v", err)
	}
	want := "-- template=1 cost=42\nSELECT 1;\n"
	if err := s.Put("job-1.sql", func(w io.Writer) error {
		_, err := io.WriteString(w, want)
		return err
	}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("job-1.sql")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != want {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	r, err := s.Open("job-1.sql")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(data) != want {
		t.Fatalf("Open read = %q, %v; want %q", data, err, want)
	}
}

func TestArtifactStorePutOverwritesAtomically(t *testing.T) {
	s, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenArtifactStore: %v", err)
	}
	for _, body := range []string{"first\n", "second\n"} {
		if err := s.Put("a.sql", func(w io.Writer) error {
			_, err := io.WriteString(w, body)
			return err
		}); err != nil {
			t.Fatalf("Put %q: %v", body, err)
		}
	}
	got, err := s.Get("a.sql")
	if err != nil || string(got) != "second\n" {
		t.Fatalf("Get = %q, %v; want \"second\\n\"", got, err)
	}
}

func TestArtifactStoreFailedWriteLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenArtifactStore(dir)
	if err != nil {
		t.Fatalf("OpenArtifactStore: %v", err)
	}
	boom := errors.New("writer failed")
	if err := s.Put("broken.sql", func(w io.Writer) error {
		io.WriteString(w, "half a file")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want wrapped %v", err, boom)
	}
	if _, err := s.Get("broken.sql"); !errors.Is(err, ErrArtifactNotFound) {
		t.Fatalf("Get after failed Put = %v, want ErrArtifactNotFound", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind after failed Put", e.Name())
		}
	}
}

func TestArtifactStoreRejectsBadNames(t *testing.T) {
	s, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenArtifactStore: %v", err)
	}
	for _, name := range []string{
		"", "../escape.sql", "a/b.sql", `a\b.sql`, ".hidden", "put-123.tmp",
		"x..y", strings.Repeat("n", 256),
	} {
		if err := s.Put(name, func(io.Writer) error { return nil }); !errors.Is(err, ErrBadArtifactName) {
			t.Errorf("Put(%q) = %v, want ErrBadArtifactName", name, err)
		}
		if _, err := s.Get(name); !errors.Is(err, ErrBadArtifactName) {
			t.Errorf("Get(%q) = %v, want ErrBadArtifactName", name, err)
		}
	}
}

func TestArtifactStoreList(t *testing.T) {
	s, err := OpenArtifactStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenArtifactStore: %v", err)
	}
	for _, name := range []string{"b.json", "a.sql", "c.sql"} {
		if err := s.Put(name, func(w io.Writer) error {
			_, err := io.WriteString(w, name)
			return err
		}); err != nil {
			t.Fatalf("Put %q: %v", name, err)
		}
	}
	// A stray temp file must stay invisible.
	if err := os.WriteFile(filepath.Join(s.Dir(), "put-zzz.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatalf("writing stray temp: %v", err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{"a.sql", "b.json", "c.sql"}
	if len(names) != len(want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}
}
