// Package storage implements the in-memory row store backing the embedded
// SQL engine, including the ANALYZE pass that populates optimizer statistics
// in the catalog.
package storage

import (
	"fmt"
	"sort"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/sqltypes"
)

// Row is one tuple; columns are positional per the table schema.
type Row []sqltypes.Value

// Table couples a catalog schema entry with its rows.
type Table struct {
	Meta *catalog.Table
	Rows []Row
}

// Append adds a row, panicking on arity mismatch (programming error).
func (t *Table) Append(r Row) {
	if len(r) != len(t.Meta.Columns) {
		panic(fmt.Sprintf("storage: row arity %d != %d columns of %s", len(r), len(t.Meta.Columns), t.Meta.Name))
	}
	t.Rows = append(t.Rows, r)
}

// Database is a named collection of tables plus the catalog schema.
type Database struct {
	Schema *catalog.Schema
	tables map[string]*Table
}

// NewDatabase creates an empty database around a schema, allocating a table
// container per schema table.
func NewDatabase(schema *catalog.Schema) *Database {
	db := &Database{Schema: schema, tables: map[string]*Table{}}
	for _, t := range schema.Tables {
		db.tables[lower(t.Name)] = &Table{Meta: t}
	}
	return db
}

// Table returns the named table, or nil. Case-insensitive.
func (db *Database) Table(name string) *Table { return db.tables[lower(name)] }

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// maxMCV is how many most-common values ANALYZE records per column.
const maxMCV = 5

// histogramBuckets is the number of equi-depth histogram buckets.
const histogramBuckets = 32

// Analyze recomputes row counts, sizes, and per-column statistics for every
// table, mirroring PostgreSQL's ANALYZE. It must be called after bulk loads
// so the planner sees fresh statistics.
func (db *Database) Analyze() {
	for _, t := range db.tables {
		analyzeTable(t)
	}
}

func analyzeTable(t *Table) {
	meta := t.Meta
	meta.RowCount = len(t.Rows)
	var width int64
	for i := range meta.Columns {
		col := &meta.Columns[i]
		st := analyzeColumn(t.Rows, i, col.Type)
		col.Stats = st
		switch col.Type {
		case catalog.TypeString:
			width += 24
		default:
			width += 8
		}
	}
	meta.SizeBytes = width * int64(len(t.Rows))
}

func analyzeColumn(rows []Row, idx int, typ catalog.ColumnType) catalog.ColumnStats {
	var st catalog.ColumnStats
	if len(rows) == 0 {
		return st
	}
	counts := map[sqltypes.Value]int{}
	nulls := 0
	var numeric []float64
	for _, r := range rows {
		v := r[idx]
		if v.IsNull() {
			nulls++
			continue
		}
		counts[v]++
		if st.NDistinct == 0 || v.Compare(st.Min) < 0 {
			st.Min = v
		}
		if st.NDistinct == 0 || v.Compare(st.Max) > 0 {
			st.Max = v
		}
		st.NDistinct = len(counts)
		if typ != catalog.TypeString {
			numeric = append(numeric, v.Float())
		}
	}
	st.NullFrac = float64(nulls) / float64(len(rows))
	st.MostCommon = topValues(counts, len(rows))
	if len(numeric) >= histogramBuckets {
		sort.Float64s(numeric)
		st.Histogram = make([]float64, histogramBuckets+1)
		for b := 0; b <= histogramBuckets; b++ {
			pos := b * (len(numeric) - 1) / histogramBuckets
			st.Histogram[b] = numeric[pos]
		}
	}
	return st
}

func topValues(counts map[sqltypes.Value]int, total int) []catalog.ValueFreq {
	type vc struct {
		v sqltypes.Value
		c int
	}
	all := make([]vc, 0, len(counts))
	for v, c := range counts {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v.Compare(all[j].v) < 0
	})
	n := maxMCV
	if n > len(all) {
		n = len(all)
	}
	out := make([]catalog.ValueFreq, 0, n)
	for _, e := range all[:n] {
		// Only record values that are genuinely common; a flat column
		// gains nothing from MCVs.
		if float64(e.c)/float64(total) < 0.01 {
			break
		}
		out = append(out, catalog.ValueFreq{Value: e.v, Freq: float64(e.c) / float64(total)})
	}
	return out
}
