package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPromptCacheRoundTrip(t *testing.T) {
	pc, err := OpenPromptCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("generate\x00SELECT 1")
	if _, ok := pc.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := pc.Put(key, []byte(`{"text":"SELECT 1"}`)); err != nil {
		t.Fatal(err)
	}
	data, ok := pc.Get(key)
	if !ok || !bytes.Equal(data, []byte(`{"text":"SELECT 1"}`)) {
		t.Fatalf("round trip: ok=%v data=%q", ok, data)
	}
	// Entries persist across re-opens of the same directory.
	pc2, err := OpenPromptCache(pc.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pc2.Get(key); !ok {
		t.Fatal("entry lost across reopen")
	}
	if n, err := pc2.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestPromptCacheRejectsBadKeys(t *testing.T) {
	pc, err := OpenPromptCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if err := pc.Put(key, []byte("x")); !errors.Is(err, ErrBadCacheKey) {
			t.Errorf("Put(%q) error = %v, want ErrBadCacheKey", key, err)
		}
		if _, ok := pc.Get(key); ok {
			t.Errorf("Get(%q) reported a hit", key)
		}
	}
}

func TestPromptCachePutIsAtomic(t *testing.T) {
	dir := t.TempDir()
	pc, err := OpenPromptCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("k")
	if err := pc.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := pc.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, ok := pc.Get(key)
	if !ok || string(data) != "v2" {
		t.Fatalf("overwrite: %q %v", data, ok)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
