package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// PromptCache is a content-addressed, persistent prompt→completion store:
// one file per entry, named by the SHA-256 of the call fingerprint, living
// under a caller-chosen directory. Reruns of a pipeline (and repeated repair
// loops within one run) look identical prompts up here before paying for an
// LLM call. Writes are atomic (temp file + rename) so a crashed run never
// leaves a truncated entry behind; a concurrent duplicate write simply
// replaces the entry with identical bytes.
type PromptCache struct {
	dir string
}

// ErrBadCacheKey reports a key that is not a hex SHA-256 digest. Keys double
// as file names, so anything else is rejected before it can escape the cache
// directory.
var ErrBadCacheKey = errors.New("storage: prompt cache key must be a hex sha256 digest")

// OpenPromptCache opens (creating if needed) a prompt cache rooted at dir.
func OpenPromptCache(dir string) (*PromptCache, error) {
	if dir == "" {
		return nil, errors.New("storage: prompt cache dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: opening prompt cache: %w", err)
	}
	return &PromptCache{dir: dir}, nil
}

// Dir returns the cache root.
func (pc *PromptCache) Dir() string { return pc.dir }

// CacheKey derives the content address for arbitrary fingerprint text.
func CacheKey(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:])
}

// validKey accepts exactly the output shape of CacheKey.
func validKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (pc *PromptCache) path(key string) string {
	return filepath.Join(pc.dir, key+".json")
}

// Get returns the entry stored under key, reporting whether it exists.
// Malformed keys and unreadable entries read as misses — the cache is an
// optimization, never a correctness dependency.
func (pc *PromptCache) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(pc.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores data under key atomically.
func (pc *PromptCache) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("%w: %q", ErrBadCacheKey, key)
	}
	tmp, err := os.CreateTemp(pc.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("storage: prompt cache put: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: prompt cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: prompt cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), pc.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: prompt cache put: %w", err)
	}
	return nil
}

// Len counts the entries currently stored (diagnostics and benchmarks).
func (pc *PromptCache) Len() (int, error) {
	entries, err := os.ReadDir(pc.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
