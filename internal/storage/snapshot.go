package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"sqlbarber/internal/catalog"
	"sqlbarber/internal/sqltypes"
)

// Snapshot format: a magic header, the JSON-encoded catalog schema
// (length-prefixed), then per table a row count followed by rows encoded as
// tagged values. Saving and loading a generated dataset is much faster than
// regenerating and re-analyzing it, and lets workload files reference a
// frozen dataset by file.

const snapshotMagic = "SQLBSNAP1"

// Value tags in the binary row encoding.
const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagString
	tagBoolTrue
	tagBoolFalse
)

// Save writes the database (schema, statistics, and all rows) to w.
func (db *Database) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	schemaJSON, err := json.Marshal(db.Schema)
	if err != nil {
		return fmt.Errorf("storage: encoding schema: %w", err)
	}
	if err := writeUvarint(bw, uint64(len(schemaJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(schemaJSON); err != nil {
		return err
	}
	for _, meta := range db.Schema.Tables {
		tbl := db.Table(meta.Name)
		if err := writeUvarint(bw, uint64(len(tbl.Rows))); err != nil {
			return err
		}
		for _, row := range tbl.Rows {
			for _, v := range row {
				if err := writeValue(bw, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("storage: not a snapshot file (magic %q)", magic)
	}
	schemaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: schema length: %w", err)
	}
	schemaJSON := make([]byte, schemaLen)
	if _, err := io.ReadFull(br, schemaJSON); err != nil {
		return nil, fmt.Errorf("storage: schema body: %w", err)
	}
	var schema catalog.Schema
	if err := json.Unmarshal(schemaJSON, &schema); err != nil {
		return nil, fmt.Errorf("storage: decoding schema: %w", err)
	}
	db := NewDatabase(&schema)
	for _, meta := range schema.Tables {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: row count of %s: %w", meta.Name, err)
		}
		tbl := db.Table(meta.Name)
		width := len(meta.Columns)
		tbl.Rows = make([]Row, 0, n)
		for i := uint64(0); i < n; i++ {
			row := make(Row, width)
			for c := 0; c < width; c++ {
				v, err := readValue(br)
				if err != nil {
					return nil, fmt.Errorf("storage: %s row %d col %d: %w", meta.Name, i, c, err)
				}
				row[c] = v
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return db, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeValue(w *bufio.Writer, v sqltypes.Value) error {
	switch v.Kind() {
	case sqltypes.KindNull:
		return w.WriteByte(tagNull)
	case sqltypes.KindInt:
		if err := w.WriteByte(tagInt); err != nil {
			return err
		}
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.Int())
		_, err := w.Write(buf[:n])
		return err
	case sqltypes.KindFloat:
		if err := w.WriteByte(tagFloat); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		_, err := w.Write(buf[:])
		return err
	case sqltypes.KindString:
		if err := w.WriteByte(tagString); err != nil {
			return err
		}
		s := v.Str()
		if err := writeUvarint(w, uint64(len(s))); err != nil {
			return err
		}
		_, err := w.WriteString(s)
		return err
	case sqltypes.KindBool:
		if v.Bool() {
			return w.WriteByte(tagBoolTrue)
		}
		return w.WriteByte(tagBoolFalse)
	}
	return fmt.Errorf("unknown value kind %v", v.Kind())
}

func readValue(r *bufio.Reader) (sqltypes.Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return sqltypes.Null, err
	}
	switch tag {
	case tagNull:
		return sqltypes.Null, nil
	case tagInt:
		n, err := binary.ReadVarint(r)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(n), nil
	case tagFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case tagString:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return sqltypes.Null, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewString(string(buf)), nil
	case tagBoolTrue:
		return sqltypes.NewBool(true), nil
	case tagBoolFalse:
		return sqltypes.NewBool(false), nil
	}
	return sqltypes.Null, fmt.Errorf("unknown value tag %d", tag)
}
