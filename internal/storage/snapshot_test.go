package storage

import (
	"bytes"
	"strings"
	"testing"

	"sqlbarber/internal/sqltypes"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := buildDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Schema round trip.
	if back.Schema.Name != db.Schema.Name || len(back.Schema.Tables) != len(db.Schema.Tables) {
		t.Fatal("schema mismatch")
	}
	orig := db.Schema.Table("data")
	got := back.Schema.Table("data")
	if got.RowCount != orig.RowCount {
		t.Fatalf("rowcount %d vs %d", got.RowCount, orig.RowCount)
	}
	// Statistics must survive (they ride inside the schema JSON).
	oc, gc := orig.Column("id"), got.Column("id")
	if gc.Stats.NDistinct != oc.Stats.NDistinct {
		t.Fatalf("ndistinct %d vs %d", gc.Stats.NDistinct, oc.Stats.NDistinct)
	}
	if gc.Stats.Min.Compare(oc.Stats.Min) != 0 || gc.Stats.Max.Compare(oc.Stats.Max) != 0 {
		t.Fatalf("min/max lost: %v..%v vs %v..%v", gc.Stats.Min, gc.Stats.Max, oc.Stats.Min, oc.Stats.Max)
	}
	og, gg := orig.Column("grp"), got.Column("grp")
	if len(gg.Stats.MostCommon) != len(og.Stats.MostCommon) {
		t.Fatal("MCVs lost")
	}
	if gg.Stats.MostCommon[0].Value.Str() != og.Stats.MostCommon[0].Value.Str() {
		t.Fatal("MCV value mangled")
	}
	// Row payload round trip, including the NULL.
	ot, gt := db.Table("data"), back.Table("data")
	if len(gt.Rows) != len(ot.Rows) {
		t.Fatalf("rows %d vs %d", len(gt.Rows), len(ot.Rows))
	}
	for i := range ot.Rows {
		for j := range ot.Rows[i] {
			a, b := ot.Rows[i][j], gt.Rows[i][j]
			if a.IsNull() != b.IsNull() {
				t.Fatalf("row %d col %d null mismatch", i, j)
			}
			if !a.IsNull() && a.Compare(b) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
			}
			if a.Kind() != b.Kind() {
				t.Fatalf("row %d col %d kind: %v vs %v", i, j, a.Kind(), b.Kind())
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot at all")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestLoadTruncated(t *testing.T) {
	db := buildDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated snapshot must be rejected")
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewInt(-42),
		sqltypes.NewFloat(3.25),
		sqltypes.NewString("o'brien"),
		sqltypes.NewBool(true),
		sqltypes.NewBool(false),
	}
	for _, v := range vals {
		data, err := v.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back sqltypes.Value
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back.Kind() != v.Kind() {
			t.Fatalf("kind %v vs %v", back.Kind(), v.Kind())
		}
		if !v.IsNull() && back.Compare(v) != 0 {
			t.Fatalf("value %v vs %v", back, v)
		}
	}
	var bad sqltypes.Value
	if err := bad.UnmarshalJSON([]byte(`{"k":99}`)); err == nil {
		t.Fatal("unknown kind must error")
	}
}
