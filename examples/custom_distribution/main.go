// Custom distribution: SQLBarber is "not restricted to specific
// distributions, and can generate queries that follow any user-specified
// cost distribution" (§1). This example targets a bimodal distribution —
// a mix of cheap OLTP-style lookups and expensive analytical scans — that
// no built-in benchmark shape covers.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"sqlbarber/internal/core"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/stats"
)

func main() {
	db := engine.OpenTPCH(99, 0.3)

	// Build a bimodal target by hand: two Gaussian humps over 8 intervals.
	intervals := stats.SplitRange(0, 2000, 8)
	weights := make([]float64, len(intervals))
	for i, iv := range intervals {
		c := iv.Center()
		weights[i] = gauss(c, 300, 150) + 0.8*gauss(c, 1500, 200)
	}
	target := stats.FromWeights(intervals, weights, 160)

	specs := []spec.Spec{
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(1), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(2), NumPredicates: spec.Int(2)},
		{NumJoins: spec.Int(0), NumPredicates: spec.Int(1), GroupBy: spec.Bool(true)},
	}

	p, err := core.New(db, llm.NewSim(llm.SimOptions{Seed: 99}), specs, target,
		core.WithSeed(99),
		core.WithCostKind(engine.Cardinality),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bimodal workload: %d queries, distance %.2f\n\n", len(res.Workload), res.Distance)
	costs := make([]float64, len(res.Workload))
	for i, q := range res.Workload {
		costs[i] = q.Cost
	}
	counts := target.Intervals.CountInto(costs)
	fmt.Println("cardinality histogram (generated vs target):")
	for j, iv := range target.Intervals {
		fmt.Printf("  %-14s %4d / %4d\n", iv, counts[j], target.Counts[j])
	}
}

func gauss(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z * z / 2)
}
