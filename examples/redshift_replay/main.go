// Redshift replay: generate a workload that mimics a production Amazon
// Redshift fleet — template structure follows the Redset-derived
// specification workload (24 templates annotated with tables/joins/
// aggregations), and query plan costs follow the Redset execution-cost
// distribution. This is the paper's headline "realistic" use case.
package main

import (
	"context"
	"fmt"
	"log"

	"sqlbarber/internal/core"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/realworld"
)

func main() {
	db := engine.OpenIMDB(21, 0.5)
	oracle := llm.NewSim(llm.SimOptions{Seed: 21})

	specs := realworld.RedsetSpecs(21)
	target := realworld.RedsetCost(0, 2500, 10, 300)

	p, err := core.New(db, oracle, specs, target,
		core.WithSeed(21),
		core.WithCostKind(engine.PlanCost),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Redshift-style workload on IMDB: %d queries, distance %.2f, %s\n",
		len(res.Workload), res.Distance, res.Elapsed.Round(1e6))
	fmt.Printf("templates: %d seeds+refinements | refine generated=%d accepted=%d | search evals=%d\n",
		len(res.Templates), res.RefineStats.Generated, res.RefineStats.Accepted, res.SearchStats.Evaluations)
	fmt.Printf("LLM usage: %d calls, %dK tokens, $%.2f at o3-mini prices\n\n",
		oracle.Ledger().Calls(), oracle.Ledger().TotalTokens()/1000, oracle.Ledger().CostUSD())

	fmt.Println("plan-cost histogram (generated vs target):")
	costs := make([]float64, len(res.Workload))
	for i, q := range res.Workload {
		costs[i] = q.Cost
	}
	counts := target.Intervals.CountInto(costs)
	for j, iv := range target.Intervals {
		bar := ""
		for i := 0; i < counts[j]; i += 4 {
			bar += "#"
		}
		fmt.Printf("  %-14s %4d / %4d %s\n", iv, counts[j], target.Counts[j], bar)
	}

	// Show the join-width profile of the workload, which should mirror the
	// Redset finding that most queries are narrow.
	joinWidth := map[int]int{}
	for _, st := range res.Templates {
		joinWidth[st.Profile.Template.Features().NumJoins]++
	}
	fmt.Println("\ntemplate join-count profile:")
	for j := 0; j <= 4; j++ {
		if joinWidth[j] > 0 {
			fmt.Printf("  %d joins: %d templates\n", j, joinWidth[j])
		}
	}
}
