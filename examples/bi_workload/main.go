// BI workload: the §2 motivating scenario — benchmarking business-
// intelligence engines needs queries with structurally simple relational
// trees (no joins) but complex scalar expressions, a shape no standard
// benchmark provides. SQLBarber generates it from a one-line instruction.
package main

import (
	"context"
	"fmt"
	"log"

	"sqlbarber/internal/core"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/sqltemplate"
	"sqlbarber/internal/stats"
)

func main() {
	db := engine.OpenTPCH(7, 0.2)

	// "I want an SQL template with no joins but with complex scalar
	// expressions" — Example 2.6 of the paper.
	instruction := "I want an SQL template with no joins but with complex scalar expressions and 2 predicate values."
	specs := make([]spec.Spec, 6)
	for i := range specs {
		specs[i] = spec.FromNaturalLanguage(instruction)
	}

	target := stats.Normal(0, 1200, 6, 60, 600, 250)
	p, err := core.New(db, llm.NewSim(llm.SimOptions{Seed: 7}), specs, target,
		core.WithSeed(7),
		core.WithCostKind(engine.Cardinality),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BI workload: %d queries, distance %.2f\n\n", len(res.Workload), res.Distance)

	// Verify the structural constraints actually hold on every template.
	violations := 0
	for _, st := range res.Templates {
		f := st.Profile.Template.Features()
		if f.NumJoins != 0 || !f.HasComplexScalar {
			violations++
		}
	}
	fmt.Printf("templates: %d total, %d violating the BI constraints\n", len(res.Templates), violations)

	fmt.Println("\nsample templates:")
	for i, st := range res.Templates {
		if i >= 3 {
			break
		}
		printTemplate(st.Profile.Template)
	}
}

func printTemplate(t *sqltemplate.Template) {
	f := t.Features()
	fmt.Printf("  [joins=%d complex_scalar=%t predicates=%d]\n  %s\n",
		f.NumJoins, f.HasComplexScalar, f.NumPredicates, t.SQL())
}
