// Regression gate: the motivating scenario of §3 — a DBMS team wants to
// catch performance regressions before shipping a change, but production SQL
// is off-limits. They generate a realistic synthetic workload once, freeze
// it, and re-cost it against the "next version" of the system (here: the
// same schema after a simulated data-growth release). Queries whose plan
// cost regresses by more than a threshold fail the gate.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"sqlbarber/internal/core"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/realworld"
	"sqlbarber/internal/workload"
)

func main() {
	// "v13": the current production-like system.
	v13 := engine.OpenTPCH(8, 0.3)

	// 1. Generate a frozen, realistic benchmark workload against v13.
	p, err := core.New(v13, llm.NewSim(llm.SimOptions{Seed: 8}),
		realworld.RedsetSpecs(8), realworld.RedsetCost(0, 1500, 8, 200),
		core.WithSeed(8),
		core.WithCostKind(engine.PlanCost),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	sum := workload.Summarize(res.Workload)
	fmt.Printf("frozen workload: %d queries from %d templates, plan cost %.0f..%.0f (mean %.0f)\n\n",
		sum.Queries, sum.Templates, sum.CostMin, sum.CostMax, sum.CostMean)

	// 2. "v14": simulate the next release — the dataset grew 60%, so plans
	// that scale badly get disproportionately more expensive.
	v14 := engine.OpenTPCH(8, 0.48)

	// 3. Re-cost every query on both versions and flag regressions.
	type regression struct {
		sql      string
		old, new float64
		ratio    float64
	}
	var regressions []regression
	failures := 0
	const threshold = 2.0 // fail if cost grows beyond 2x the median growth
	var ratios []float64
	costsNew := make([]float64, len(res.Workload))
	for i, q := range res.Workload {
		newCost, err := v14.Cost(context.Background(), q.SQL, engine.PlanCost)
		if err != nil {
			failures++
			continue
		}
		costsNew[i] = newCost
		if q.Cost > 0 {
			ratios = append(ratios, newCost/q.Cost)
		}
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	for i, q := range res.Workload {
		if q.Cost <= 0 || costsNew[i] == 0 {
			continue
		}
		ratio := costsNew[i] / q.Cost
		if ratio > median*threshold {
			regressions = append(regressions, regression{q.SQL, q.Cost, costsNew[i], ratio})
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].ratio > regressions[j].ratio })

	fmt.Printf("v13 -> v14 median cost growth: %.2fx (expected from 60%% data growth)\n", median)
	fmt.Printf("regression gate (> %.1fx median growth): %d of %d queries flagged, %d errored\n\n",
		threshold, len(regressions), len(res.Workload), failures)
	for i, r := range regressions {
		if i >= 3 {
			fmt.Printf("... and %d more\n", len(regressions)-3)
			break
		}
		fmt.Printf("REGRESSION %.1fx (%.0f -> %.0f):\n  %.110s\n", r.ratio, r.old, r.new, r.sql)
	}
	if len(regressions) == 0 {
		fmt.Println("gate PASSED: no query regressed disproportionately")
	}
}
