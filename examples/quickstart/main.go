// Quickstart: generate a 100-query workload on the built-in TPC-H dataset
// whose cardinalities are uniformly distributed over [0, 1500), from three
// natural-language template specifications.
package main

import (
	"context"
	"fmt"
	"log"

	"sqlbarber/internal/core"
	"sqlbarber/internal/engine"
	"sqlbarber/internal/llm"
	"sqlbarber/internal/spec"
	"sqlbarber/internal/stats"
)

func main() {
	// 1. Open a target database (the embedded TPC-H-shaped dataset).
	db := engine.OpenTPCH(42, 0.2)

	// 2. Describe the templates you want in plain language.
	specs := []spec.Spec{
		spec.FromNaturalLanguage("I want an SQL template with 1 join and 2 predicate values."),
		spec.FromNaturalLanguage("I want an SQL template with no joins, 2 predicate values, and a nested subquery."),
		spec.FromNaturalLanguage("I want an SQL template with 1 join, 1 predicate value, 2 aggregations, and a GROUP BY."),
	}

	// 3. Describe the cost distribution the workload must follow.
	target := stats.Uniform(0, 1500, 6, 100)

	// 4. Generate: New validates everything up front (coded errors), Run
	// executes the pipeline.
	p, err := core.New(db, llm.NewSim(llm.SimOptions{Seed: 42}), specs, target,
		core.WithSeed(42),
		core.WithCostKind(engine.Cardinality),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d queries in %s (Wasserstein distance to target: %.2f)\n\n",
		len(res.Workload), res.Elapsed.Round(1e6), res.Distance)
	for i, q := range res.Workload {
		if i >= 5 {
			fmt.Printf("... and %d more\n", len(res.Workload)-5)
			break
		}
		fmt.Printf("-- cardinality=%.0f\n%s;\n", q.Cost, q.SQL)
	}

	// 5. Inspect how the costs landed in each interval.
	counts := target.Intervals.CountInto(costsOf(res))
	fmt.Println("\ninterval histogram (generated vs target):")
	for j, iv := range target.Intervals {
		fmt.Printf("  %-14s %4d / %4d\n", iv, counts[j], target.Counts[j])
	}
}

func costsOf(res *core.Result) []float64 {
	out := make([]float64, len(res.Workload))
	for i, q := range res.Workload {
		out[i] = q.Cost
	}
	return out
}
