package sqlbarber

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRoundTrip builds the sqlbarber and replay binaries and drives the
// full user journey: generate a workload file, then replay it and verify
// every recorded cost still reproduces.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	build := func(name, pkg string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
		return bin
	}
	gen := build("sqlbarber", "./cmd/sqlbarber")
	replay := build("replay", "./cmd/replay")

	workloadFile := filepath.Join(dir, "w.sql")
	cmd := exec.Command(gen,
		"-dataset", "tpch", "-sf", "0.1", "-seed", "7",
		"-queries", "30", "-intervals", "3", "-range", "600",
		"-out", workloadFile)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sqlbarber: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wasserstein distance") {
		t.Fatalf("generation summary missing:\n%s", stderr.String())
	}
	data, err := os.ReadFile(workloadFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "-- template=") {
		t.Fatalf("workload file missing annotations:\n%.200s", data)
	}

	out, err := exec.Command(replay,
		"-dataset", "tpch", "-sf", "0.1", "-seed", "7",
		"-cost", "cardinality", "-in", workloadFile).CombinedOutput()
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "errors=0") || !strings.Contains(string(out), "cost drift > 1.0%: 0") {
		t.Fatalf("replay found drift:\n%s", out)
	}
}

// TestCLIJSONOutput checks the JSON manifest format end-to-end.
func TestCLIJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sqlbarber")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/sqlbarber").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin,
		"-dataset", "tpch", "-sf", "0.1", "-queries", "12", "-intervals", "3",
		"-range", "500", "-format", "json").Output()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{`"cost_kind": "cardinality"`, `"queries"`, `"wasserstein_distance"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("JSON output missing %s:\n%.300s", want, out)
		}
	}
}

// TestCLIBarbervet builds the repo linter and checks both halves of its
// contract: the real tree passes clean (exit 0) and the badpkg fixture —
// which violates every rule — fails with a non-zero exit naming each code.
func TestCLIBarbervet(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "barbervet")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/barbervet").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// The production tree must be clean.
	if out, err := exec.Command(bin, "./...").CombinedOutput(); err != nil {
		t.Fatalf("barbervet flags the real tree: %v\n%s", err, out)
	}

	// The known-bad fixture must fail with findings for every rule.
	fixture := filepath.Join("cmd", "barbervet", "testdata", "internal", "badpkg")
	out, err := exec.Command(bin, fixture).CombinedOutput()
	if err == nil {
		t.Fatalf("barbervet accepted the bad fixture:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("want exit code 1, got %v\n%s", err, out)
	}
	for _, code := range []string{"R001", "R002", "R003", "R004"} {
		if !strings.Contains(string(out), code) {
			t.Errorf("fixture output missing rule %s:\n%s", code, out)
		}
	}
}
