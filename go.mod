module sqlbarber

go 1.24
